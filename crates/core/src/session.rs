//! The per-connection session runtime.
//!
//! A [`Session`] is what one client *owns*: the execution-mode and
//! resource knobs (`\mode`, `\algo`, `\threads`, `\window`), the
//! preference registry + rewriter, and a private spill directory for
//! external-memory runs. What it *borrows* is the shared
//! [`EngineCore`] — catalog and index
//! toggles — so any number of sessions can serve concurrent connections
//! against one database:
//!
//! ```text
//!            ┌───────────┐ ┌───────────┐ ┌───────────┐
//! clients ──►│ Session 1 │ │ Session 2 │ │ Session N │   knobs, rewriter,
//!            └─────┬─────┘ └─────┬─────┘ └─────┬─────┘   spill dir
//!                  └──────┬──────┴──────┬──────┘
//!                         ▼             ▼
//!                  ┌─────────────────────────┐
//!                  │  EngineCore (Arc)       │   RwLock<Catalog>
//!                  └─────────────────────────┘
//! ```
//!
//! Both the interactive shell and the TCP server are thin clients of
//! this type: all knob handling lives in [`Session::command`], so the
//! two front ends cannot drift.

use crate::native::{self, NativeOptions, SkylineAlgo};
use crate::result::ResultSet;
use prefsql_engine::{BackendKind, Engine, EngineCore, ExecOutcome};
use prefsql_parser::ast::{Expr as PExpr, InsertSource, Query, Statement};
use prefsql_parser::{parse_statement, parse_statements};
use prefsql_rewrite::{RewriteOutput, Rewriter};
use prefsql_types::{Error, Result};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How preference queries are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// The paper's approach: rewrite to SQL92 and let the host engine
    /// evaluate the `NOT EXISTS` dominance anti-join.
    #[default]
    Rewrite,
    /// Native in-layer evaluation through the [`crate::native::PreferenceOp`]
    /// physical operator (ablation A1: "implementing a generalized skyline
    /// operator in the kernel ... holds much promise"). The default
    /// algorithm is [`SkylineAlgo::Auto`], which picks naive/BNL/SFS per
    /// input — see [`ExecutionMode::native`].
    Native(SkylineAlgo),
}

impl ExecutionMode {
    /// Native evaluation with the default algorithm
    /// ([`SkylineAlgo::Auto`]).
    pub fn native() -> Self {
        ExecutionMode::Native(SkylineAlgo::default())
    }

    /// The label the shell and server display: `rewrite` or
    /// `native (<algo>)`.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Rewrite => "rewrite",
            ExecutionMode::Native(SkylineAlgo::Naive) => "native (naive)",
            ExecutionMode::Native(SkylineAlgo::Bnl) => "native (bnl)",
            ExecutionMode::Native(SkylineAlgo::Sfs) => "native (sfs)",
            ExecutionMode::Native(SkylineAlgo::Auto) => "native (auto)",
        }
    }
}

/// Result of executing one Preference SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Rows of a SELECT.
    Rows(ResultSet),
    /// Affected-row count of an INSERT.
    Count(usize),
    /// Acknowledgement of DDL or preference DDL.
    Message(String),
    /// EXPLAIN output (includes the rewritten SQL for preference queries).
    Explain(String),
}

impl QueryResult {
    /// The rows of a SELECT result, or `None` for counts/messages/EXPLAIN.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// Consume the result into its rows, or `None` for other outcomes.
    pub fn into_rows(self) -> Option<ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// The rows of a SELECT result (panics otherwise; test/demo
    /// convenience — production code should prefer [`QueryResult::rows`]).
    pub fn expect_rows(self) -> ResultSet {
        match self {
            QueryResult::Rows(rs) => rs,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// Distinguishes concurrently-created session spill dirs within one
/// process (the directory name also carries the pid, so concurrent
/// *processes* cannot collide either).
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// One client's runtime state over a shared [`EngineCore`]: execution
/// mode, native-evaluation knobs, rewriter/registry, and a lazily
/// created private spill directory (removed on drop).
pub struct Session {
    engine: Engine,
    rewriter: Rewriter,
    mode: ExecutionMode,
    /// The skyline algorithm `\mode native` re-arms (remembered even
    /// while in rewrite mode).
    algo: SkylineAlgo,
    /// Parallel-window degree knob for native preference evaluation
    /// (default: `PREFSQL_THREADS` or the host width).
    threads: usize,
    /// External-memory window budget in bytes for native preference
    /// evaluation (default: `PREFSQL_WINDOW`, or `None` = unbounded).
    window_bytes: Option<usize>,
    /// This session's private spill directory, created on first use and
    /// removed when the session drops.
    spill_dir: Option<PathBuf>,
    /// Number of materialized preference views the last forwarded
    /// statement incrementally maintained (front ends print it after
    /// DML, the way spill metrics follow a windowed query).
    last_view_maintained: u64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session over its own private core (an empty catalog).
    pub fn new() -> Self {
        Session::with_core(EngineCore::shared())
    }

    /// A session over an existing shared core — the server spawns one of
    /// these per accepted connection.
    pub fn with_core(core: Arc<EngineCore>) -> Self {
        core.metrics().session_opened();
        let mut session = Session {
            engine: Engine::with_core(core),
            rewriter: Rewriter::new(),
            mode: ExecutionMode::Rewrite,
            algo: SkylineAlgo::default(),
            threads: crate::knobs::default_threads(),
            window_bytes: crate::knobs::default_window_bytes(),
            spill_dir: None,
            last_view_maintained: 0,
        };
        session.sync_engine_window();
        session
    }

    /// The shared engine core this session executes against.
    pub fn core(&self) -> &Arc<EngineCore> {
        self.engine.core()
    }

    /// The session's engine façade (catalog access, stats, index toggles).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (bulk loading, index toggles).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Switch the evaluation strategy for preference queries. Entering
    /// native mode also re-arms the remembered `\algo` choice.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        if let ExecutionMode::Native(algo) = mode {
            self.algo = algo;
        }
        self.mode = mode;
    }

    /// The current evaluation strategy.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Set the native skyline algorithm. Applies immediately when in
    /// native mode, and is remembered for the next `\mode native`.
    pub fn set_algo(&mut self, algo: SkylineAlgo) {
        self.algo = algo;
        if matches!(self.mode, ExecutionMode::Native(_)) {
            self.mode = ExecutionMode::Native(algo);
        }
    }

    /// The native skyline algorithm `\mode native` would use.
    pub fn algo(&self) -> SkylineAlgo {
        self.algo
    }

    /// Cap the parallel-window degree for native preference evaluation
    /// (clamped to at least 1; `1` forces the serial window). The
    /// skyline only actually parallelizes above
    /// [`prefsql_pref::PARALLEL_CUTOFF`] candidates.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The parallel-window degree knob.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Set the external-memory window budget for native preference
    /// evaluation: `Some(bytes)` streams candidate sets larger than the
    /// budget through the bounded-window multi-pass BNL with
    /// spill-to-disk overflow runs (clamped to at least
    /// [`crate::knobs::MIN_WINDOW_BYTES`]); `None` never spills.
    pub fn set_window_bytes(&mut self, window_bytes: Option<usize>) {
        self.window_bytes = window_bytes.map(|b| b.max(crate::knobs::MIN_WINDOW_BYTES));
        self.sync_engine_window();
    }

    /// The external-memory window budget knob.
    pub fn window_bytes(&self) -> Option<usize> {
        self.window_bytes
    }

    /// The session's private spill directory, named on first use.
    /// External-memory runs land here instead of the bare system temp
    /// dir, so concurrent sessions never share spill state and teardown
    /// is one `remove_dir_all`. The directory itself only appears the
    /// first time an operator actually spills (`SpillManager::new_in`
    /// creates the whole path), so sessions that never overflow never
    /// touch the filesystem.
    fn spill_base(&mut self) -> &Path {
        if self.spill_dir.is_none() {
            let dir = std::env::temp_dir().join(format!(
                "prefsql-session-{}-{}",
                std::process::id(),
                SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            self.spill_dir = Some(dir);
        }
        self.spill_dir.as_deref().expect("just named")
    }

    /// Push the session's window budget down to the host engine so plain
    /// SQL joins obey the same external-memory discipline as native
    /// preference evaluation: when `\window` is set, an oversized hash
    /// join build side partitions to this session's spill directory.
    fn sync_engine_window(&mut self) {
        self.engine.set_window_bytes(self.window_bytes);
        let base = if self.window_bytes.is_some() {
            Some(self.spill_base().to_path_buf())
        } else {
            None
        };
        self.engine.set_spill_base(base);
    }

    /// Execute one statement of Preference SQL.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        parse_statements(sql)?
            .iter()
            .map(|s| self.execute_statement(s))
            .collect()
    }

    /// Execute a query and return its rows (errors on non-SELECT).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(rs) => Ok(rs),
            other => Err(Error::Exec(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The SQL a preference statement is rewritten into (passthrough
    /// statements return `None`). Purely introspective — nothing is
    /// executed.
    pub fn rewritten_sql(&mut self, sql: &str) -> Result<Option<String>> {
        let stmt = parse_statement(sql)?;
        match self.rewriter.process(&stmt)? {
            RewriteOutput::Rewritten { sql, .. } => Ok(Some(sql)),
            RewriteOutput::Passthrough => Ok(None),
            RewriteOutput::Handled(_) => Err(Error::Exec(
                "statement is preference DDL, not a query".into(),
            )),
        }
    }

    /// Number of materialized preference views the last forwarded
    /// statement incrementally maintained (0 for reads and for DML on
    /// tables without views).
    pub fn last_view_maintained(&self) -> u64 {
        self.last_view_maintained
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        // Every statement — whichever path evaluates it — feeds the
        // engine-wide metrics registry exactly once, here.
        let started = Instant::now();
        let result = self.execute_statement_inner(stmt);
        let metrics = self.engine.core().metrics();
        metrics.note_statement(started.elapsed().as_nanos() as u64, result.is_ok());
        match &result {
            Ok(QueryResult::Rows(rs)) => metrics.add_rows_returned(rs.len() as u64),
            Ok(QueryResult::Count(n)) => metrics.add_rows_affected(*n as u64),
            _ => {}
        }
        result
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> Result<QueryResult> {
        // Materialized preference view DDL: the engine owns the stored
        // result but has no preference registry, so named preferences in
        // the definition resolve through this session's registry first.
        if let Statement::CreateMaterializedView { name, query } = stmt {
            let mut q = (**query).clone();
            if let Some(p) = &q.preferring {
                q.preferring = Some(self.rewriter.registry().resolve(p)?);
            }
            let resolved = Statement::CreateMaterializedView {
                name: name.clone(),
                query: Box::new(q),
            };
            return self.forward(&resolved, false);
        }
        // Native mode evaluates preference SELECTs inside this layer and
        // explains them with the native plan it would run.
        if let ExecutionMode::Native(algo) = self.mode {
            // Built literally: the session's own `\threads` knob must
            // win over `NativeOptions::default()`'s session default.
            let opts = NativeOptions {
                algo,
                threads: self.threads,
                batch: Some(prefsql_engine::physical::DEFAULT_BATCH),
                window_bytes: self.window_bytes,
            };
            if let Statement::Select(q) = stmt {
                if q.preferring.is_some() {
                    // A bounded window may spill; root the runs in this
                    // session's own directory.
                    let spill = if self.window_bytes.is_some() {
                        Some(self.spill_base().to_path_buf())
                    } else {
                        None
                    };
                    // Like `forward`, report the buffer-pool delta this
                    // statement caused (paged backend only).
                    let pool_before = match self.engine.backend_kind() {
                        BackendKind::Paged => Some(self.engine.pool_stats()),
                        BackendKind::Mem => None,
                    };
                    let rs = native::run_native_in(
                        &self.engine,
                        self.rewriter.registry(),
                        q,
                        opts,
                        spill.as_deref(),
                    )?;
                    let rs = rs.with_pool(pool_before.map(|b| self.engine.pool_stats().since(&b)));
                    return Ok(QueryResult::Rows(rs));
                }
            }
            if let Statement::Explain {
                analyze,
                statement: inner,
            } = stmt
            {
                if let Statement::Select(q) = inner.as_ref() {
                    if q.preferring.is_some() {
                        let plan = native::explain_native_opts(
                            &self.engine,
                            self.rewriter.registry(),
                            q,
                            opts,
                        )?;
                        if *analyze {
                            return self.explain_analyze_native(q, opts, plan);
                        }
                        return Ok(QueryResult::Explain(format!(
                            "Native preference plan:\n{plan}"
                        )));
                    }
                }
            }
        }
        match self.rewriter.process(stmt)? {
            RewriteOutput::Handled(msg) => Ok(QueryResult::Message(msg)),
            RewriteOutput::Passthrough => self.forward(stmt, false),
            RewriteOutput::Rewritten { statement, sql, .. } => {
                // EXPLAIN of a preference query shows the rewrite first
                // (ANALYZE additionally executes the rewritten statement
                // and annotates the host plan — the engine handles both).
                if let Statement::Explain {
                    statement: inner, ..
                } = statement.as_ref()
                {
                    let plan = match self.engine.execute(&statement)? {
                        ExecOutcome::Explain(p) => p,
                        other => {
                            return Err(Error::Exec(format!(
                                "EXPLAIN produced unexpected outcome: {other:?}"
                            )))
                        }
                    };
                    return Ok(QueryResult::Explain(format!(
                        "Preference SQL rewrite:\n  {}\n\nHost engine plan:\n{plan}",
                        inner
                    )));
                }
                let _ = sql; // the wire-format text; statement is executed directly

                // INSERT ... SELECT * PREFERRING ...: a wildcard over the
                // rewritten query exposes the generated level columns, which
                // must not reach the target table. Materialize, strip, then
                // insert the clean rows through the engine's validation path.
                if let Statement::Insert {
                    table,
                    columns,
                    source: InsertSource::Query(q),
                } = statement.as_ref()
                {
                    let rel = self.engine.run_query(q, &[])?;
                    let rs = ResultSet::new(rel).strip_generated_columns();
                    let values: Vec<Vec<PExpr>> = rs
                        .rows()
                        .iter()
                        .map(|r| r.values().iter().cloned().map(PExpr::Literal).collect())
                        .collect();
                    if values.is_empty() {
                        return Ok(QueryResult::Count(0));
                    }
                    let insert = Statement::Insert {
                        table: table.clone(),
                        columns: columns.clone(),
                        source: InsertSource::Values(values),
                    };
                    return self.forward(&insert, false);
                }
                self.forward(&statement, true)
            }
        }
    }

    fn forward(&mut self, stmt: &Statement, strip_generated: bool) -> Result<QueryResult> {
        // Discard spill and view-maintenance accounting a prior rowless
        // statement (e.g. an INSERT ... SELECT whose join spilled) may
        // have left behind, so every result reports only its own work.
        let _ = self.engine.take_spill_metrics();
        let _ = self.engine.take_view_maintenance();
        self.last_view_maintained = 0;
        // Snapshot the shared buffer pool so a row result can report this
        // statement's delta (paged backend only — the counters are
        // cumulative across all sessions on the core).
        let pool_before = match self.engine.backend_kind() {
            BackendKind::Paged => Some(self.engine.pool_stats()),
            BackendKind::Mem => None,
        };
        let outcome = self.engine.execute(stmt)?;
        self.last_view_maintained = self.engine.take_view_maintenance();
        match outcome {
            ExecOutcome::Rows(rel) => {
                let rs = ResultSet::new(rel);
                let rs = if strip_generated {
                    rs.strip_generated_columns()
                } else {
                    rs
                };
                // A hash join that overflowed `\window` reports its run
                // accounting the same way native skylines do.
                let rs = rs.with_spill(self.engine.take_spill_metrics());
                let rs =
                    rs.with_pool(pool_before.map(|before| self.engine.pool_stats().since(&before)));
                Ok(QueryResult::Rows(rs))
            }
            ExecOutcome::Count(n) => Ok(QueryResult::Count(n)),
            ExecOutcome::Ddl(msg) => Ok(QueryResult::Message(msg)),
            ExecOutcome::Explain(text) => Ok(QueryResult::Explain(text)),
        }
    }

    /// `EXPLAIN ANALYZE` of a native-mode preference query: actually run
    /// the statement with the host source plan instrumented, then report
    /// the planned tree, the dominance tally, spill/pool activity, the
    /// executed source tree with per-node metrics, and the wall time.
    /// `plan` is the already-rendered plain native plan.
    fn explain_analyze_native(
        &mut self,
        q: &Query,
        opts: NativeOptions,
        plan: String,
    ) -> Result<QueryResult> {
        let spill = if self.window_bytes.is_some() {
            Some(self.spill_base().to_path_buf())
        } else {
            None
        };
        let pool_before = match self.engine.backend_kind() {
            BackendKind::Paged => Some(self.engine.pool_stats()),
            BackendKind::Mem => None,
        };
        let was = self.engine.profiling();
        self.engine.set_profiling(true);
        let started = Instant::now();
        let result = native::run_native_in(
            &self.engine,
            self.rewriter.registry(),
            q,
            opts,
            spill.as_deref(),
        );
        self.engine.set_profiling(was);
        let rs = result?;
        let elapsed = started.elapsed();
        let rs = rs.with_pool(pool_before.map(|b| self.engine.pool_stats().since(&b)));

        let mut text = format!("Native preference plan:\n{plan}");
        let _ = writeln!(
            text,
            "Preference evaluation: {} winner(s), {} dominance comparison(s)",
            rs.len(),
            rs.dominance_tests()
        );
        if let Some(m) = rs.spill_metrics() {
            let _ = writeln!(
                text,
                "{}",
                crate::footer::spill_line(&self.window_label(), m)
            );
        }
        if let Some(p) = rs.pool_stats() {
            let _ = writeln!(text, "{}", crate::footer::pool_line(&self.pool_label(), p));
        }
        // The executed source tree, annotated per node — absent when a
        // view cache hit replaced the whole scan-and-select pipeline.
        if let Some(src) = self.engine.take_analyzed() {
            text.push_str("Source plan (actual):\n");
            for line in src.lines() {
                let _ = writeln!(text, "  {line}");
            }
        }
        let _ = writeln!(
            text,
            "Execution: returned {} row(s) in {:.3} ms",
            rs.len(),
            elapsed.as_secs_f64() * 1e3
        );
        Ok(QueryResult::Explain(text))
    }

    /// Arm or disarm always-on statement profiling: every subsequently
    /// executed statement leaves its analyzed plan behind for
    /// [`Session::take_analyzed`]. The server's slow-query log runs
    /// sessions this way; `EXPLAIN ANALYZE` needs no arming.
    pub fn set_profile_all(&mut self, on: bool) {
        self.engine.set_profiling(on);
    }

    /// Consume the analyzed plan of the last profiled statement
    /// (`None` when the statement did not execute a profiled plan —
    /// DDL, meta output, or profiling not armed).
    pub fn take_analyzed(&mut self) -> Option<String> {
        self.engine.take_analyzed()
    }

    /// Handle a session-level `\`-meta-command shared by every front end
    /// (shell, server): `\mode`, `\algo`, `\threads`, `\window`,
    /// `\pool`, `\backend`, `\metrics`, `\rewrite`, `\d`. Returns `None` for
    /// commands the session does not own (`\q`, `\timing`, `\help`, ...)
    /// so the caller can layer its own on top.
    pub fn command(&mut self, head: &str, arg: &str) -> Option<String> {
        let out = match head {
            "\\mode" => match arg {
                "" => format!("mode: {}\n", self.mode.label()),
                "rewrite" => {
                    self.set_mode(ExecutionMode::Rewrite);
                    "mode: rewrite\n".into()
                }
                // `\mode native` uses the session's `\algo` choice
                // (auto unless changed).
                "native" => {
                    self.set_mode(ExecutionMode::Native(self.algo));
                    format!("mode: {}\n", self.mode.label())
                }
                algo_arg if SkylineAlgo::parse(algo_arg).is_some() => {
                    let algo = SkylineAlgo::parse(algo_arg).expect("guard checked");
                    self.set_mode(ExecutionMode::Native(algo));
                    format!("mode: {}\n", self.mode.label())
                }
                other => {
                    format!("unknown mode '{other}' (rewrite|native|naive|bnl|sfs|auto)\n")
                }
            },
            "\\algo" => match arg {
                "" => format!("algo: {}\n", self.algo.label()),
                a => match SkylineAlgo::parse(a) {
                    Some(algo) => {
                        self.set_algo(algo);
                        format!("algo: {}\n", algo.label())
                    }
                    None => format!("unknown algorithm '{a}' (auto|naive|bnl|sfs)\n"),
                },
            },
            "\\threads" => match arg {
                "" => format!("threads: {}\n", self.threads),
                n => match n.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.set_threads(n);
                        format!("threads: {}\n", self.threads)
                    }
                    _ => format!("invalid thread count '{n}' (positive integer)\n"),
                },
            },
            "\\window" => match arg {
                "" => format!("window: {}\n", self.window_label()),
                "off" | "unlimited" => {
                    self.set_window_bytes(None);
                    "window: off\n".into()
                }
                w => match crate::knobs::parse_size(w) {
                    // `set_window_bytes` clamps sub-minimum budgets up to
                    // MIN_WINDOW_BYTES; echo what actually took effect,
                    // flagging when it differs from what was asked for.
                    Some(n) if n >= 1 => {
                        self.set_window_bytes(Some(n));
                        let clamped = if n < crate::knobs::MIN_WINDOW_BYTES {
                            " (clamped)"
                        } else {
                            ""
                        };
                        format!("window: {}{clamped}\n", self.window_label())
                    }
                    _ => format!(
                        "invalid window budget '{w}' (bytes with optional k/m suffix, or 'off')\n"
                    ),
                },
            },
            "\\pool" => match arg {
                "" => format!("pool: {}\n", self.pool_label()),
                p => match crate::knobs::parse_size(p) {
                    Some(n) if n >= 1 => match self.engine.core().resize_pool(n) {
                        // The pool clamps to its four-page floor and
                        // rounds to whole pages; echo the effective size,
                        // flagging when the floor raised the request.
                        Ok(effective) => {
                            let clamped = if effective > n { " (clamped)" } else { "" };
                            format!(
                                "pool: {}{clamped}\n",
                                crate::knobs::fmt_bytes(effective as u64)
                            )
                        }
                        Err(e) => format!("ERROR: {e}\n"),
                    },
                    _ => format!("invalid pool size '{p}' (bytes with optional k/m suffix)\n"),
                },
            },
            "\\backend" => match arg {
                "" => format!("backend: {}\n", self.engine.backend_kind().label()),
                // Unlike the `PREFSQL_BACKEND` ceiling (anything
                // non-"paged" means mem), an interactive typo should be
                // an error, not a silent fallback.
                b => match b.to_ascii_lowercase().as_str() {
                    kind @ ("mem" | "paged") => {
                        match self.engine.core().set_backend(BackendKind::parse(kind)) {
                            Ok(()) => format!("backend: {kind}\n"),
                            Err(e) => format!("ERROR: {e}\n"),
                        }
                    }
                    _ => format!("unknown backend '{b}' (mem|paged)\n"),
                },
            },
            "\\metrics" => {
                let mut out = String::new();
                for (k, v) in self.engine.core().metrics_report() {
                    let _ = writeln!(out, "{k:<32} {v}");
                }
                out
            }
            "\\rewrite" => match self.rewritten_sql(arg) {
                Ok(Some(sql)) => format!("{sql}\n"),
                Ok(None) => "query contains no preference constructs\n".into(),
                Err(e) => format!("ERROR: {e}\n"),
            },
            "\\d" => {
                if arg.is_empty() {
                    self.list_relations()
                } else {
                    self.describe_table(arg)
                }
            }
            _ => return None,
        };
        Some(out)
    }

    /// The `\window` display label: `64 KiB` or `off`.
    pub fn window_label(&self) -> String {
        match self.window_bytes {
            Some(b) => crate::knobs::fmt_bytes(b as u64),
            None => "off".into(),
        }
    }

    /// The `\pool` display label: the shared buffer pool's current
    /// capacity, e.g. `1 MiB`.
    pub fn pool_label(&self) -> String {
        let stats = self.engine.pool_stats();
        crate::knobs::fmt_bytes((stats.capacity_pages * prefsql_storage::page::PAGE_SIZE) as u64)
    }

    fn list_relations(&self) -> String {
        let catalog = self.engine.catalog();
        let mut out = String::new();
        let tables = catalog.table_names();
        let views = catalog.view_names();
        let _ = writeln!(out, "tables ({}):", tables.len());
        for t in tables {
            let n = catalog.table(&t).map(|t| t.len()).unwrap_or(0);
            let _ = writeln!(out, "  {t} ({n} rows)");
        }
        if !views.is_empty() {
            let _ = writeln!(out, "views ({}):", views.len());
            for v in views {
                let _ = writeln!(out, "  {v}");
            }
        }
        let matviews = catalog.matview_names();
        if !matviews.is_empty() {
            let _ = writeln!(out, "materialized preference views ({}):", matviews.len());
            for v in matviews {
                match catalog.matview(&v) {
                    Some(d) if d.stale => {
                        let _ = writeln!(out, "  {v} (stale; REFRESH to rebuild)");
                    }
                    Some(d) => {
                        let _ = writeln!(out, "  {v} ({} rows)", d.winner_count());
                    }
                    None => {
                        let _ = writeln!(out, "  {v}");
                    }
                }
            }
        }
        out
    }

    fn describe_table(&self, name: &str) -> String {
        match self.engine.catalog().table(name) {
            Ok(t) => {
                let mut out = format!("table {} {}\n", t.name(), t.schema());
                let idx = t.index_names();
                if !idx.is_empty() {
                    let _ = writeln!(out, "indexes: {}", idx.join(", "));
                }
                out
            }
            Err(e) => format!("ERROR: {e}\n"),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.engine.core().metrics().session_closed();
        // Best-effort teardown of the private spill dir; leaking temp
        // files on failure beats panicking in a destructor.
        if let Some(dir) = self.spill_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_share_one_core() {
        let core = EngineCore::shared();
        let mut a = Session::with_core(Arc::clone(&core));
        let mut b = Session::with_core(core);
        a.execute("CREATE TABLE t (x INTEGER)").unwrap();
        a.execute("INSERT INTO t VALUES (3), (1)").unwrap();
        // Session B sees A's table through the shared catalog...
        let rs = b.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![1]);
        // ...but keeps its own knobs and preference registry.
        b.set_mode(ExecutionMode::native());
        assert_eq!(a.mode(), ExecutionMode::Rewrite);
        b.execute("CREATE PREFERENCE cheap AS LOWEST(x)").unwrap();
        assert!(a
            .query("SELECT x FROM t PREFERRING PREFERENCE cheap")
            .is_err());
        let rs = b
            .query("SELECT x FROM t PREFERRING PREFERENCE cheap")
            .unwrap();
        assert_eq!(rs.column_as_ints(0), vec![1]);
    }

    #[test]
    fn knob_commands_round_trip() {
        let mut s = Session::new();
        assert_eq!(s.command("\\mode", "").unwrap(), "mode: rewrite\n");
        assert_eq!(s.command("\\mode", "bnl").unwrap(), "mode: native (bnl)\n");
        assert_eq!(s.command("\\algo", "").unwrap(), "algo: bnl\n");
        assert_eq!(s.command("\\algo", "sfs").unwrap(), "algo: sfs\n");
        assert_eq!(s.mode(), ExecutionMode::Native(SkylineAlgo::Sfs));
        assert_eq!(s.command("\\threads", "4").unwrap(), "threads: 4\n");
        assert_eq!(s.threads(), 4);
        assert_eq!(s.command("\\window", "64k").unwrap(), "window: 64 KiB\n");
        assert_eq!(s.window_bytes(), Some(64 << 10));
        // A sub-minimum budget takes effect clamped, and says so.
        assert_eq!(
            s.command("\\window", "100").unwrap(),
            "window: 4 KiB (clamped)\n"
        );
        assert_eq!(s.window_bytes(), Some(crate::knobs::MIN_WINDOW_BYTES));
        assert_eq!(s.command("\\window", "off").unwrap(), "window: off\n");
        // The storage knobs: backend is introspectable, the pool resizes
        // with the same clamp reporting as `\window`.
        assert_eq!(s.command("\\backend", "").unwrap(), "backend: mem\n");
        assert!(s
            .command("\\backend", "disk")
            .unwrap()
            .contains("unknown backend"));
        assert_eq!(s.command("\\pool", "64k").unwrap(), "pool: 64 KiB\n");
        assert_eq!(s.command("\\pool", "").unwrap(), "pool: 64 KiB\n");
        assert_eq!(
            s.command("\\pool", "1k").unwrap(),
            "pool: 16 KiB (clamped)\n"
        );
        assert!(s
            .command("\\pool", "banana")
            .unwrap()
            .contains("invalid pool size"));
        // Commands the session doesn't own bounce back to the front end.
        assert!(s.command("\\q", "").is_none());
        assert!(s.command("\\timing", "").is_none());
    }

    #[test]
    fn algo_is_remembered_across_mode_switches() {
        let mut s = Session::new();
        s.set_algo(SkylineAlgo::Sfs);
        assert_eq!(
            s.mode(),
            ExecutionMode::Rewrite,
            "algo alone doesn't switch"
        );
        s.set_mode(ExecutionMode::Native(s.algo()));
        assert_eq!(s.mode(), ExecutionMode::Native(SkylineAlgo::Sfs));
        // Changing the algorithm while native applies immediately.
        s.set_algo(SkylineAlgo::Bnl);
        assert_eq!(s.mode(), ExecutionMode::Native(SkylineAlgo::Bnl));
    }

    #[test]
    fn matview_serves_native_queries_and_tracks_dml() {
        let mut s = Session::new();
        s.execute("CREATE TABLE cars (id INTEGER, price INTEGER, hp INTEGER)")
            .unwrap();
        s.execute("INSERT INTO cars VALUES (1, 10, 90), (2, 20, 120), (3, 15, 120), (4, 30, 200)")
            .unwrap();
        // Named preferences resolve through the session registry before
        // the engine stores the definition.
        s.execute("CREATE PREFERENCE sporty AS LOWEST(price) AND HIGHEST(hp)")
            .unwrap();
        s.execute(
            "CREATE MATERIALIZED PREFERENCE VIEW best AS \
             SELECT * FROM cars PREFERRING PREFERENCE sporty",
        )
        .unwrap();

        let sql = "SELECT id FROM cars PREFERRING PREFERENCE sporty";
        s.set_mode(ExecutionMode::native());
        let hit = s.query(sql).unwrap();
        assert_eq!(
            hit.view_activity().and_then(|v| v.served_by.as_deref()),
            Some("best"),
            "native query over the view's BMO is served from the cache"
        );
        // Byte-identical to the rewrite-path recomputation.
        s.set_mode(ExecutionMode::Rewrite);
        let oracle = s.query(sql).unwrap();
        assert!(oracle.view_activity().is_none(), "rewrite path recomputes");
        assert_eq!(hit, oracle);

        // EXPLAIN says how the cache relates to the query.
        s.set_mode(ExecutionMode::native());
        let plan = match s.execute(&format!("EXPLAIN {sql}")).unwrap() {
            QueryResult::Explain(p) => p,
            other => panic!("expected EXPLAIN output, got {other:?}"),
        };
        assert!(plan.contains("[view=best hit]"), "{plan}");
        assert!(plan.contains("Materialized view scan: best"), "{plan}");
        let plan = match s
            .execute("EXPLAIN SELECT id FROM cars PREFERRING LOWEST(hp)")
            .unwrap()
        {
            QueryResult::Explain(p) => p,
            other => panic!("expected EXPLAIN output, got {other:?}"),
        };
        assert!(plan.contains("[view=best miss]"), "{plan}");

        // DML reports incremental maintenance, and the next hit serves
        // the updated winner set.
        assert_eq!(s.last_view_maintained(), 0);
        s.execute("INSERT INTO cars VALUES (5, 5, 300)").unwrap();
        assert_eq!(s.last_view_maintained(), 1);
        let hit = s.query(sql).unwrap();
        assert_eq!(hit.column_as_ints(0), vec![5], "(5,300) dominates all");
        s.execute("DELETE FROM cars WHERE id = 5").unwrap();
        assert_eq!(s.last_view_maintained(), 1);
        let hit = s.query(sql).unwrap();
        s.set_mode(ExecutionMode::Rewrite);
        assert_eq!(hit, s.query(sql).unwrap(), "delete-of-winner promotes");

        // `\d` lists the view with its current cardinality.
        let listing = s.command("\\d", "").unwrap();
        assert!(
            listing.contains("materialized preference views (1):"),
            "{listing}"
        );
        assert!(listing.contains("best ("), "{listing}");
    }

    #[test]
    fn spill_dir_is_private_and_removed_on_drop() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (x INTEGER, y INTEGER)").unwrap();
        let values: Vec<String> = (0..400).map(|i| format!("({i}, {})", 400 - i)).collect();
        s.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        s.set_mode(ExecutionMode::native());
        s.set_window_bytes(Some(4096));
        let rs = s
            .query("SELECT x FROM t PREFERRING LOWEST(x) AND LOWEST(y)")
            .unwrap();
        assert_eq!(rs.rows().len(), 400);
        let m = rs.spill_metrics().expect("bounded window reports metrics");
        assert!(m.runs_written >= 1, "anti-correlated 400 rows must spill");
        let dir = s.spill_dir.clone().expect("spill dir was created");
        assert!(dir.exists());
        drop(s);
        assert!(!dir.exists(), "session teardown removes its spill dir");
    }
}
