//! `prefsql-cli` — an interactive Preference SQL shell.
//!
//! ```sh
//! cargo run -p prefsql --bin prefsql-cli
//! prefsql> CREATE TABLE trips (dest VARCHAR, duration INTEGER);
//! prefsql> INSERT INTO trips VALUES ('Rome', 10), ('Oslo', 14);
//! prefsql> SELECT * FROM trips PREFERRING duration AROUND 14;
//! prefsql> \help
//! ```
//!
//! With `--demo`, pre-loads the paper's example datasets (oldtimer, cars,
//! a used-car market, trips, computers, hotels, washing machines).

use prefsql::shell::Shell;
use std::io::{BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    if std::env::args().any(|a| a == "--demo") {
        load_demo(&mut shell);
        println!(
            "Demo datasets loaded: oldtimer, cars, car (market), trips, computers, \
             hotels, products. Try:\n  {}\n  \\d",
            prefsql_workload_hint()
        );
    }
    println!("Preference SQL shell — \\help for commands, \\q to quit.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("{}", shell.prompt());
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                print!("{}", shell.feed_line(&line));
                if shell.should_quit() {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

fn prefsql_workload_hint() -> &'static str {
    "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer \
     PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40;"
}

fn load_demo(shell: &mut Shell) {
    use prefsql_workload::*;
    let mut catalog = shell.session_mut().engine_mut().catalog_mut();
    catalog
        .create_table(oldtimer::table())
        .expect("fresh catalog");
    catalog
        .create_table(cars::paper_fixture())
        .expect("fresh catalog");
    catalog
        .create_table(cars::market(500, 1))
        .expect("fresh catalog");
    catalog
        .create_table(trips::table(200, 2))
        .expect("fresh catalog");
    catalog
        .create_table(computers::table(200, 3))
        .expect("fresh catalog");
    catalog
        .create_table(hotels::table(200, 4))
        .expect("fresh catalog");
    catalog
        .create_table(products::table(200, 5))
        .expect("fresh catalog");
}
