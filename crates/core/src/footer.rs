//! The per-statement observability footer every front end prints after
//! a result: spill, buffer-pool, view-cache and timing lines.
//!
//! One formatter per line keeps the shell transcript, the server smoke
//! session, and `EXPLAIN ANALYZE`'s native annotations byte-consistent —
//! a format change here changes every surface at once instead of
//! drifting per front end.

use crate::result::ResultSet;
use crate::session::Session;
use prefsql_pref::SpillMetrics;
use prefsql_storage::PoolStats;
use std::fmt::Write as _;
use std::time::Duration;

/// `Spill: window=…, spilled_runs=…, spilled_bytes=…, passes=…`
pub(crate) fn spill_line(window_label: &str, m: &SpillMetrics) -> String {
    format!(
        "Spill: window={}, spilled_runs={}, spilled_bytes={}, passes={}",
        window_label,
        m.runs_written,
        crate::knobs::fmt_bytes(m.bytes_spilled),
        m.passes
    )
}

/// `Pool: size=…, hits=…, misses=…, evictions=…, writebacks=…`
pub(crate) fn pool_line(pool_label: &str, p: &PoolStats) -> String {
    format!(
        "Pool: size={}, hits={}, misses={}, evictions={}, writebacks={}",
        pool_label, p.hits, p.misses, p.evictions, p.writebacks
    )
}

/// `View: served by <name>`
pub(crate) fn view_line(name: &str) -> String {
    format!("View: served by {name}")
}

/// `Maintained: <n> materialized view(s)`
pub(crate) fn maintained_line(n: u64) -> String {
    format!("Maintained: {n} materialized view(s)")
}

/// `Time: <ms> ms`
pub(crate) fn time_line(elapsed: Duration) -> String {
    format!("Time: {:.3} ms", elapsed.as_secs_f64() * 1e3)
}

/// The full footer block for one row result, in the fixed order
/// Spill → Pool → View (each line only when that activity occurred).
pub(crate) fn result_footer(session: &Session, rs: &ResultSet) -> String {
    let mut out = String::new();
    if let Some(m) = rs.spill_metrics() {
        let _ = writeln!(out, "{}", spill_line(&session.window_label(), m));
    }
    if let Some(p) = rs.pool_stats() {
        let _ = writeln!(out, "{}", pool_line(&session.pool_label(), p));
    }
    if let Some(v) = rs.view_activity() {
        if let Some(name) = &v.served_by {
            let _ = writeln!(out, "{}", view_line(name));
        }
    }
    out
}
