//! An interactive Preference SQL shell (the engine behind the
//! `prefsql-cli` binary).
//!
//! Statements are buffered until a terminating `;`. Backslash
//! meta-commands control the session:
//!
//! | command | effect |
//! |---|---|
//! | `\d` | list tables, views and named preferences |
//! | `\d <table>` | show a table's schema and indexes |
//! | `\mode [rewrite\|native\|naive\|bnl\|sfs\|auto]` | show/switch the execution mode |
//! | `\algo [auto\|naive\|bnl\|sfs]` | show/set the native skyline algorithm |
//! | `\threads [N]` | show/set the parallel skyline degree |
//! | `\window [N[k\|m]\|off]` | show/set the external-memory window budget |
//! | `\pool [N[k\|m]]` | show/resize the shared buffer pool (paged backend) |
//! | `\backend [mem\|paged]` | show/set the storage backend (empty catalog only) |
//! | `\metrics` | show the engine-wide metrics registry |
//! | `\timing [on\|off]` | toggle or set per-statement timing |
//! | `\rewrite <query>` | show the SQL a preference query rewrites into |
//! | `\help` | list commands |
//! | `\q` | quit |
//!
//! The shell is a *thin* front end: everything except line buffering,
//! `\timing` and `\q` is delegated to [`Session`] (knob handling lives
//! in [`Session::command`], shared with the `prefsql-server` front
//! end).

use crate::session::{QueryResult, Session};
use std::fmt::Write as _;
use std::time::Instant;

/// A line-oriented shell over a [`Session`].
pub struct Shell {
    session: Session,
    buffer: String,
    timing: bool,
    quit: bool,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    /// A fresh session with an empty catalog.
    pub fn new() -> Self {
        Shell::over(Session::new())
    }

    /// A shell over an existing session (e.g. one sharing a server's
    /// engine core).
    pub fn over(session: Session) -> Self {
        Shell {
            session,
            buffer: String::new(),
            timing: false,
            quit: false,
        }
    }

    /// Access the underlying session (for pre-loading data).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// True after `\q`.
    pub fn should_quit(&self) -> bool {
        self.quit
    }

    /// The prompt reflecting buffer state: `prefsql>` or continuation `...>`.
    pub fn prompt(&self) -> &'static str {
        if self.buffer.trim().is_empty() {
            "prefsql> "
        } else {
            "    ...> "
        }
    }

    /// Feed one input line; returns the text to print.
    pub fn feed_line(&mut self, line: &str) -> String {
        let trimmed = line.trim();
        if self.buffer.trim().is_empty() && trimmed.starts_with('\\') {
            return self.meta_command(trimmed);
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        // Execute every complete `;`-terminated statement in the buffer.
        let mut out = String::new();
        while let Some(pos) = statement_end(&self.buffer) {
            let stmt: String = self.buffer.drain(..=pos).collect();
            let stmt = stmt.trim().trim_end_matches(';').trim().to_string();
            if stmt.is_empty() {
                continue;
            }
            out.push_str(&self.run_statement(&stmt));
        }
        out
    }

    fn run_statement(&mut self, sql: &str) -> String {
        let t0 = Instant::now();
        let result = self.session.execute(sql);
        let elapsed = t0.elapsed();
        let mut out = match result {
            Ok(QueryResult::Rows(rs)) => {
                // Every row result carries one observability footer
                // block (spill, pool, view cache) in a fixed order — the
                // formats live in `crate::footer`, shared with EXPLAIN
                // ANALYZE's native annotations.
                format!("{rs}{}", crate::footer::result_footer(&self.session, &rs))
            }
            Ok(QueryResult::Count(n)) => {
                let mut text = format!("INSERT {n}\n");
                // DML that incrementally maintained materialized
                // preference views reports how many it touched.
                let maintained = self.session.last_view_maintained();
                if maintained > 0 {
                    let _ = writeln!(text, "{}", crate::footer::maintained_line(maintained));
                }
                text
            }
            Ok(QueryResult::Message(m)) => format!("{m}\n"),
            Ok(QueryResult::Explain(text)) => text,
            Err(e) => format!("ERROR: {e}\n"),
        };
        if self.timing {
            let _ = writeln!(out, "{}", crate::footer::time_line(elapsed));
        }
        out
    }

    fn meta_command(&mut self, cmd: &str) -> String {
        let mut parts = cmd.splitn(2, char::is_whitespace);
        let head = parts.next().unwrap_or("");
        let arg = parts.next().map(str::trim).unwrap_or("");
        // Session-level knobs and introspection are shared with the
        // server front end; the shell only adds its own REPL commands.
        if let Some(out) = self.session.command(head, arg) {
            return out;
        }
        match head {
            "\\q" | "\\quit" => {
                self.quit = true;
                "bye\n".into()
            }
            "\\help" | "\\?" => "\\d [table]   list relations / describe a table\n\
                 \\mode [m]    show or set execution mode (rewrite|native|naive|bnl|sfs|auto)\n\
                 \\algo [a]    show or set the native skyline algorithm (auto|naive|bnl|sfs)\n\
                 \\threads [n] show or set the parallel skyline degree (1 = serial)\n\
                 \\window [w]  show or set the external-memory window budget\n\
                 \\            (bytes with optional k/m suffix, or 'off' = never spill)\n\
                 \\pool [p]    show or resize the shared buffer pool (paged backend)\n\
                 \\backend [b] show or set the storage backend (mem|paged; empty catalog only)\n\
                 \\rewrite q   show the standard SQL a preference query becomes\n\
                 \\metrics     show the engine-wide metrics registry\n\
                 \\timing [t]  toggle timing, or set it (on|off)\n\
                 \\q           quit\n"
                .into(),
            "\\timing" => {
                match arg {
                    "" => self.timing = !self.timing,
                    "on" => self.timing = true,
                    "off" => self.timing = false,
                    other => return format!("unknown timing argument '{other}' (on|off)\n"),
                }
                format!("timing {}\n", if self.timing { "on" } else { "off" })
            }
            other => format!("unknown command '{other}' (try \\help)\n"),
        }
    }
}

/// Index of the `;` ending the first complete statement, respecting
/// string literals (quoted semicolons do not terminate).
fn statement_end(buffer: &str) -> Option<usize> {
    let mut in_string = false;
    for (i, c) in buffer.char_indices() {
        match c {
            '\'' => in_string = !in_string,
            ';' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_complete_statements() {
        let mut sh = Shell::new();
        assert_eq!(
            sh.feed_line("CREATE TABLE t (x INTEGER);"),
            "created table t\n"
        );
        assert_eq!(sh.feed_line("INSERT INTO t VALUES (1), (2);"), "INSERT 2\n");
        let out = sh.feed_line("SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(out.contains("| 1 |"), "{out}");
        assert!(out.contains("(1 rows)"), "{out}");
    }

    #[test]
    fn buffers_across_lines() {
        let mut sh = Shell::new();
        assert_eq!(sh.prompt(), "prefsql> ");
        assert_eq!(sh.feed_line("CREATE TABLE t"), "");
        assert_eq!(sh.prompt(), "    ...> ");
        assert_eq!(sh.feed_line("(x INTEGER);"), "created table t\n");
        assert_eq!(sh.prompt(), "prefsql> ");
    }

    #[test]
    fn semicolons_inside_strings_do_not_split() {
        let mut sh = Shell::new();
        sh.feed_line("CREATE TABLE t (s VARCHAR);");
        assert_eq!(sh.feed_line("INSERT INTO t VALUES ('a;b');"), "INSERT 1\n");
        let out = sh.feed_line("SELECT s FROM t;");
        assert!(out.contains("a;b"), "{out}");
    }

    #[test]
    fn multiple_statements_one_line() {
        let mut sh = Shell::new();
        let out = sh.feed_line("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1);");
        assert!(out.contains("created table t"));
        assert!(out.contains("INSERT 1"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        let out = sh.feed_line("SELECT * FROM missing;");
        assert!(out.starts_with("ERROR:"), "{out}");
        assert!(!sh.should_quit());
        assert_eq!(
            sh.feed_line("CREATE TABLE t (x INTEGER);"),
            "created table t\n"
        );
    }

    #[test]
    fn meta_commands() {
        let mut sh = Shell::new();
        sh.feed_line("CREATE TABLE cars (make VARCHAR, price INTEGER);");
        sh.feed_line("CREATE INDEX i ON cars (price);");
        let out = sh.feed_line("\\d");
        assert!(out.contains("cars (0 rows)"), "{out}");
        let out = sh.feed_line("\\d cars");
        assert!(out.contains("make VARCHAR"), "{out}");
        assert!(out.contains("indexes: i"), "{out}");
        let out = sh.feed_line("\\d nope");
        assert!(out.starts_with("ERROR"), "{out}");
        assert!(sh.feed_line("\\help").contains("\\mode"));
        assert!(sh.feed_line("\\nosuch").contains("unknown command"));
    }

    #[test]
    fn mode_switching() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\mode"), "mode: rewrite\n");
        assert_eq!(sh.feed_line("\\mode bnl"), "mode: native (bnl)\n");
        assert_eq!(sh.feed_line("\\mode"), "mode: native (bnl)\n");
        sh.feed_line("CREATE TABLE t (x INTEGER);");
        sh.feed_line("INSERT INTO t VALUES (2), (1);");
        let out = sh.feed_line("SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(out.contains("| 1 |"), "{out}");
        assert!(sh.feed_line("\\mode warp").contains("unknown mode"));
    }

    #[test]
    fn native_mode_defaults_to_auto() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\mode native"), "mode: native (auto)\n");
        assert_eq!(sh.feed_line("\\mode auto"), "mode: native (auto)\n");
        sh.feed_line("CREATE TABLE t (x INTEGER);");
        sh.feed_line("INSERT INTO t VALUES (2), (1);");
        let out = sh.feed_line("SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(out.contains("| 1 |"), "{out}");
    }

    #[test]
    fn algo_command_switches_native_algorithm() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\algo"), "algo: auto\n");
        // Setting the algorithm outside native mode is remembered...
        assert_eq!(sh.feed_line("\\algo sfs"), "algo: sfs\n");
        assert_eq!(sh.feed_line("\\mode"), "mode: rewrite\n");
        assert_eq!(sh.feed_line("\\mode native"), "mode: native (sfs)\n");
        // ...and changing it while native applies immediately.
        assert_eq!(sh.feed_line("\\algo auto"), "algo: auto\n");
        assert_eq!(sh.feed_line("\\mode"), "mode: native (auto)\n");
        assert!(sh.feed_line("\\algo warp").contains("unknown algorithm"));
        assert!(sh.feed_line("\\help").contains("\\algo"));
    }

    #[test]
    fn threads_command_controls_parallel_degree() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\threads 4"), "threads: 4\n");
        assert_eq!(sh.feed_line("\\threads"), "threads: 4\n");
        // Queries still work with the knob set, in both modes.
        sh.feed_line("CREATE TABLE t (x INTEGER);");
        sh.feed_line("INSERT INTO t VALUES (2), (1);");
        sh.feed_line("\\mode native");
        let out = sh.feed_line("SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(out.contains("| 1 |"), "{out}");
        // EXPLAIN surfaces the degree ceiling next to the algorithm.
        let out = sh.feed_line("EXPLAIN SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(out.contains("algo=auto, threads=4"), "{out}");
        // Serial knob drops the annotation again.
        sh.feed_line("\\threads 1");
        let out = sh.feed_line("EXPLAIN SELECT x FROM t PREFERRING LOWEST(x);");
        assert!(!out.contains("threads="), "{out}");
        assert!(sh.feed_line("\\threads 0").contains("invalid thread count"));
        assert!(sh
            .feed_line("\\threads many")
            .contains("invalid thread count"));
        assert!(sh.feed_line("\\help").contains("\\threads"));
    }

    #[test]
    fn window_command_controls_external_memory_budget() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\window 64k"), "window: 64 KiB\n");
        assert_eq!(sh.feed_line("\\window"), "window: 64 KiB\n");
        assert_eq!(sh.feed_line("\\window 1m"), "window: 1 MiB\n");
        // Sub-minimum budgets clamp up to MIN_WINDOW_BYTES (4 KiB), and
        // the answer admits the clamp instead of silently differing.
        assert_eq!(sh.feed_line("\\window 100"), "window: 4 KiB (clamped)\n");
        assert_eq!(sh.feed_line("\\window"), "window: 4 KiB\n");
        // Zero and garbage are rejected like `\threads 0`.
        assert!(sh.feed_line("\\window 0").contains("invalid window budget"));
        assert!(sh
            .feed_line("\\window banana")
            .contains("invalid window budget"));
        assert_eq!(sh.feed_line("\\window off"), "window: off\n");
        assert_eq!(sh.feed_line("\\window"), "window: off\n");
        assert!(sh.feed_line("\\help").contains("\\window"));
    }

    #[test]
    fn window_budget_spills_prints_metrics_and_explains() {
        let mut sh = Shell::new();
        sh.feed_line("CREATE TABLE pts (x INTEGER, y INTEGER);");
        // Anti-correlated points: x + y = 400, nothing dominates
        // anything, so the whole table is the skyline and a 4 KiB
        // window must overflow and re-feed runs.
        let values: Vec<String> = (0..400).map(|i| format!("({i}, {})", 400 - i)).collect();
        sh.feed_line(&format!("INSERT INTO pts VALUES {};", values.join(", ")));
        sh.feed_line("\\mode native");
        sh.feed_line("\\window 4k");

        // EXPLAIN surfaces the budget the operator will stream under.
        let out = sh.feed_line("EXPLAIN SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y);");
        assert!(out.contains("window=4 KiB"), "{out}");

        // Execution reports the spill metrics after the rows.
        let out = sh.feed_line("SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y);");
        assert!(out.contains("(400 rows)"), "{out}");
        assert!(out.contains("Spill: window=4 KiB"), "{out}");
        assert!(out.contains("spilled_runs="), "{out}");
        assert!(out.contains("passes="), "{out}");
        let runs: u64 = out
            .split("spilled_runs=")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("metrics line carries a run count");
        assert!(runs >= 1, "{out}");

        // Turning the window off drops both the annotation and the line.
        sh.feed_line("\\window off");
        let out = sh.feed_line("EXPLAIN SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y);");
        assert!(!out.contains("window="), "{out}");
        let out = sh.feed_line("SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y);");
        assert!(!out.contains("Spill:"), "{out}");
    }

    #[test]
    fn rewrite_inspection() {
        let mut sh = Shell::new();
        let out = sh.feed_line("\\rewrite SELECT * FROM t PREFERRING LOWEST(x)");
        assert!(out.contains("NOT EXISTS"), "{out}");
        let out = sh.feed_line("\\rewrite SELECT * FROM t");
        assert!(out.contains("no preference constructs"), "{out}");
    }

    #[test]
    fn timing_toggle_and_quit() {
        let mut sh = Shell::new();
        assert_eq!(sh.feed_line("\\timing"), "timing on\n");
        sh.feed_line("CREATE TABLE t (x INTEGER);");
        let out = sh.feed_line("SELECT 1;");
        assert!(out.contains("Time:"), "{out}");
        assert_eq!(sh.feed_line("\\timing"), "timing off\n");
        assert_eq!(sh.feed_line("\\q"), "bye\n");
        assert!(sh.should_quit());
    }
}
