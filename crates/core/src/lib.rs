//! # Preference SQL
//!
//! A full reproduction of *"Preference SQL — Design, Implementation,
//! Experiences"* (Kießling & Köstler, VLDB 2002): standard SQL extended
//! with **preferences as strict partial orders**, executed by rewriting
//! preference queries into plain SQL92 over a bundled host engine.
//!
//! ```text
//! application ──► PrefSqlConnection ──► Preference SQL optimizer (rewrite)
//!                                            │ standard SQL
//!                                            ▼
//!                                       host SQL engine ──► storage
//! ```
//!
//! Concurrency: all shared engine state lives in a `Send + Sync`
//! [`engine::EngineCore`]; each connection wraps a [`Session`] carrying
//! its own execution knobs (mode, `\algo`, threads, window) and private
//! spill directory. [`PrefSqlConnection::new`] makes a private core;
//! [`PrefSqlConnection::with_core`] / [`Session::with_core`] share one
//! across threads (that is what the `prefsql-server` TCP front end
//! does, one session per connection).
//!
//! # Quickstart
//!
//! ```
//! use prefsql::PrefSqlConnection;
//!
//! let mut conn = PrefSqlConnection::new();
//! conn.execute("CREATE TABLE trips (dest VARCHAR, duration INTEGER)").unwrap();
//! conn.execute("INSERT INTO trips VALUES ('Rome', 10), ('Oslo', 14), ('Pisa', 21)").unwrap();
//!
//! // Soft constraint: 14 days if possible, otherwise as close as possible.
//! let rs = conn.query("SELECT dest FROM trips PREFERRING duration AROUND 14").unwrap();
//! assert_eq!(rs.column_as_strings(0), vec!["Oslo"]);
//!
//! // Even with no exact match, the best alternatives come back — never an
//! // empty result unless the table itself is empty.
//! let rs = conn.query("SELECT dest FROM trips PREFERRING duration AROUND 12").unwrap();
//! assert_eq!(rs.column_as_strings(0), vec!["Rome", "Oslo"]);
//! ```
//!
//! The crate re-exports the full stack: [`parser`], [`engine`], [`pref`]
//! (the preference algebra and skyline algorithms), [`rewrite`] (the
//! optimizer) and [`types`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection;
pub(crate) mod footer;
pub mod knobs;
pub mod native;
pub mod result;
pub mod session;
pub mod shell;

pub use connection::{ExecutionMode, PrefSqlConnection, QueryResult};
pub use native::{NativeOptions, SkylineAlgo, SpillMetrics};
pub use result::{ResultSet, ViewActivity};
pub use session::Session;

/// Re-export: the host SQL engine.
pub use prefsql_engine as engine;
/// Re-export: SQL + Preference SQL parser.
pub use prefsql_parser as parser;
/// Re-export: the preference model and skyline algorithms.
pub use prefsql_pref as pref;
/// Re-export: the Preference SQL optimizer.
pub use prefsql_rewrite as rewrite;
/// Re-export: storage layer.
pub use prefsql_storage as storage;
/// Re-export: value/type/schema substrate.
pub use prefsql_types as types;

pub use prefsql_types::{Date, Error, Result, Value};
