//! The connection facade — the in-process equivalent of the paper's
//! "Preference ODBC/JDBC driver" (§3.1): applications submit Preference
//! SQL; preference queries are rewritten to standard SQL and forwarded to
//! the host engine; everything else passes through untouched.

use crate::native::{self, NativeOptions, SkylineAlgo};
use crate::result::ResultSet;
use prefsql_engine::{Engine, ExecOutcome};
use prefsql_parser::ast::{Expr as PExpr, InsertSource, Statement};
use prefsql_parser::{parse_statement, parse_statements};
use prefsql_rewrite::{RewriteOutput, Rewriter};
use prefsql_types::{Error, Result};

/// How preference queries are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// The paper's approach: rewrite to SQL92 and let the host engine
    /// evaluate the `NOT EXISTS` dominance anti-join.
    #[default]
    Rewrite,
    /// Native in-layer evaluation through the [`crate::native::PreferenceOp`]
    /// physical operator (ablation A1: "implementing a generalized skyline
    /// operator in the kernel ... holds much promise"). The default
    /// algorithm is [`SkylineAlgo::Auto`], which picks naive/BNL/SFS per
    /// input — see [`ExecutionMode::native`].
    Native(SkylineAlgo),
}

impl ExecutionMode {
    /// Native evaluation with the default algorithm
    /// ([`SkylineAlgo::Auto`]).
    pub fn native() -> Self {
        ExecutionMode::Native(SkylineAlgo::default())
    }
}

/// Result of executing one Preference SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Rows of a SELECT.
    Rows(ResultSet),
    /// Affected-row count of an INSERT.
    Count(usize),
    /// Acknowledgement of DDL or preference DDL.
    Message(String),
    /// EXPLAIN output (includes the rewritten SQL for preference queries).
    Explain(String),
}

impl QueryResult {
    /// The rows of a SELECT result, or `None` for counts/messages/EXPLAIN.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// Consume the result into its rows, or `None` for other outcomes.
    pub fn into_rows(self) -> Option<ResultSet> {
        match self {
            QueryResult::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// The rows of a SELECT result (panics otherwise; test/demo
    /// convenience — production code should prefer [`QueryResult::rows`]).
    pub fn expect_rows(self) -> ResultSet {
        match self {
            QueryResult::Rows(rs) => rs,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// An in-process Preference SQL connection: rewriter + host engine +
/// named-preference registry.
pub struct PrefSqlConnection {
    engine: Engine,
    rewriter: Rewriter,
    mode: ExecutionMode,
    /// Parallel-window degree knob for native preference evaluation
    /// (default: `PREFSQL_THREADS` or the host width).
    threads: usize,
    /// External-memory window budget in bytes for native preference
    /// evaluation (default: `PREFSQL_WINDOW`, or `None` = unbounded).
    window_bytes: Option<usize>,
}

impl Default for PrefSqlConnection {
    fn default() -> Self {
        PrefSqlConnection::new()
    }
}

impl PrefSqlConnection {
    /// A fresh connection with an empty catalog. Preference queries
    /// execute via the paper's rewrite by default; switching to native
    /// evaluation without naming an algorithm
    /// ([`ExecutionMode::native`]) uses [`SkylineAlgo::Auto`], the
    /// default native mode.
    pub fn new() -> Self {
        PrefSqlConnection {
            engine: Engine::new(),
            rewriter: Rewriter::new(),
            mode: ExecutionMode::Rewrite,
            threads: crate::knobs::default_threads(),
            window_bytes: crate::knobs::default_window_bytes(),
        }
    }

    /// Switch the evaluation strategy for preference queries.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// The current evaluation strategy.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Cap the parallel-window degree for native preference evaluation
    /// (clamped to at least 1; `1` forces the serial window). The
    /// skyline only actually parallelizes above
    /// [`prefsql_pref::PARALLEL_CUTOFF`] candidates.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The parallel-window degree knob.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Set the external-memory window budget for native preference
    /// evaluation: `Some(bytes)` streams candidate sets larger than the
    /// budget through the bounded-window multi-pass BNL with
    /// spill-to-disk overflow runs (clamped to at least
    /// [`crate::knobs::MIN_WINDOW_BYTES`]); `None` never spills.
    pub fn set_window_bytes(&mut self, window_bytes: Option<usize>) {
        self.window_bytes = window_bytes.map(|b| b.max(crate::knobs::MIN_WINDOW_BYTES));
    }

    /// The external-memory window budget knob.
    pub fn window_bytes(&self) -> Option<usize> {
        self.window_bytes
    }

    /// The underlying host engine (catalog access, stats, index toggles).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable host-engine access (bulk loading, index toggles).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Execute one statement of Preference SQL.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        parse_statements(sql)?
            .iter()
            .map(|s| self.execute_statement(s))
            .collect()
    }

    /// Execute a query and return its rows (errors on non-SELECT).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(rs) => Ok(rs),
            other => Err(Error::Exec(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The SQL a preference statement is rewritten into (passthrough
    /// statements return `None`). Purely introspective — nothing is
    /// executed.
    pub fn rewritten_sql(&mut self, sql: &str) -> Result<Option<String>> {
        let stmt = parse_statement(sql)?;
        match self.rewriter.process(&stmt)? {
            RewriteOutput::Rewritten { sql, .. } => Ok(Some(sql)),
            RewriteOutput::Passthrough => Ok(None),
            RewriteOutput::Handled(_) => Err(Error::Exec(
                "statement is preference DDL, not a query".into(),
            )),
        }
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        // Native mode evaluates preference SELECTs inside this layer and
        // explains them with the native plan it would run.
        if let ExecutionMode::Native(algo) = self.mode {
            // Built literally: the connection's own `\threads` knob must
            // win over `NativeOptions::default()`'s session default.
            let opts = NativeOptions {
                algo,
                threads: self.threads,
                batch: Some(prefsql_engine::physical::DEFAULT_BATCH),
                window_bytes: self.window_bytes,
            };
            if let Statement::Select(q) = stmt {
                if q.preferring.is_some() {
                    let rs =
                        native::run_native_opts(&self.engine, self.rewriter.registry(), q, opts)?;
                    return Ok(QueryResult::Rows(rs));
                }
            }
            if let Statement::Explain(inner) = stmt {
                if let Statement::Select(q) = inner.as_ref() {
                    if q.preferring.is_some() {
                        let plan = native::explain_native_opts(
                            &self.engine,
                            self.rewriter.registry(),
                            q,
                            opts,
                        )?;
                        return Ok(QueryResult::Explain(format!(
                            "Native preference plan:\n{plan}"
                        )));
                    }
                }
            }
        }
        match self.rewriter.process(stmt)? {
            RewriteOutput::Handled(msg) => Ok(QueryResult::Message(msg)),
            RewriteOutput::Passthrough => self.forward(stmt, false),
            RewriteOutput::Rewritten { statement, sql, .. } => {
                // EXPLAIN of a preference query shows the rewrite first.
                if let Statement::Explain(inner) = statement.as_ref() {
                    let plan = match self.engine.execute(&statement)? {
                        ExecOutcome::Explain(p) => p,
                        other => {
                            return Err(Error::Exec(format!(
                                "EXPLAIN produced unexpected outcome: {other:?}"
                            )))
                        }
                    };
                    return Ok(QueryResult::Explain(format!(
                        "Preference SQL rewrite:\n  {}\n\nHost engine plan:\n{plan}",
                        inner
                    )));
                }
                let _ = sql; // the wire-format text; statement is executed directly

                // INSERT ... SELECT * PREFERRING ...: a wildcard over the
                // rewritten query exposes the generated level columns, which
                // must not reach the target table. Materialize, strip, then
                // insert the clean rows through the engine's validation path.
                if let Statement::Insert {
                    table,
                    columns,
                    source: InsertSource::Query(q),
                } = statement.as_ref()
                {
                    self.engine.begin_statement();
                    let rel = self.engine.run_query(q, &[])?;
                    let rs = ResultSet::new(rel).strip_generated_columns();
                    let values: Vec<Vec<PExpr>> = rs
                        .rows()
                        .iter()
                        .map(|r| r.values().iter().cloned().map(PExpr::Literal).collect())
                        .collect();
                    if values.is_empty() {
                        return Ok(QueryResult::Count(0));
                    }
                    let insert = Statement::Insert {
                        table: table.clone(),
                        columns: columns.clone(),
                        source: InsertSource::Values(values),
                    };
                    return self.forward(&insert, false);
                }
                self.forward(&statement, true)
            }
        }
    }

    fn forward(&mut self, stmt: &Statement, strip_generated: bool) -> Result<QueryResult> {
        match self.engine.execute(stmt)? {
            ExecOutcome::Rows(rel) => {
                let rs = ResultSet::new(rel);
                let rs = if strip_generated {
                    rs.strip_generated_columns()
                } else {
                    rs
                };
                Ok(QueryResult::Rows(rs))
            }
            ExecOutcome::Count(n) => Ok(QueryResult::Count(n)),
            ExecOutcome::Ddl(msg) => Ok(QueryResult::Message(msg)),
            ExecOutcome::Explain(text) => Ok(QueryResult::Explain(text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_standard_sql() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        assert_eq!(
            c.execute("INSERT INTO t VALUES (1), (2)").unwrap(),
            QueryResult::Count(2)
        );
        let rs = c.query("SELECT x FROM t ORDER BY x DESC").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![2, 1]);
    }

    #[test]
    fn preference_query_executes_via_rewrite() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (9), (14), (20)")
            .unwrap();
        let rs = c.query("SELECT x FROM t PREFERRING x AROUND 13").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![14]);
    }

    #[test]
    fn select_star_hides_level_columns() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER, y VARCHAR)").unwrap();
        c.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let rs = c.query("SELECT * FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_names(), vec!["x", "y"]);
        assert_eq!(rs.rows().len(), 1);
    }

    #[test]
    fn rewritten_sql_introspection() {
        let mut c = PrefSqlConnection::new();
        let sql = c
            .rewritten_sql("SELECT * FROM t PREFERRING LOWEST(x)")
            .unwrap()
            .unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
        assert!(c.rewritten_sql("SELECT * FROM t").unwrap().is_none());
    }

    #[test]
    fn preference_ddl_is_handled_in_layer() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE cars (price INTEGER)").unwrap();
        c.execute("INSERT INTO cars VALUES (10), (20)").unwrap();
        let r = c
            .execute("CREATE PREFERENCE cheap AS LOWEST(price)")
            .unwrap();
        assert!(matches!(r, QueryResult::Message(_)));
        let rs = c
            .query("SELECT price FROM cars PREFERRING PREFERENCE cheap")
            .unwrap();
        assert_eq!(rs.column_as_ints(0), vec![10]);
        c.execute("DROP PREFERENCE cheap").unwrap();
        assert!(c
            .query("SELECT price FROM cars PREFERRING PREFERENCE cheap")
            .is_err());
    }

    #[test]
    fn explain_shows_rewrite_and_plan() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        let out = c
            .execute("EXPLAIN SELECT * FROM t PREFERRING LOWEST(x)")
            .unwrap();
        match out {
            QueryResult::Explain(text) => {
                assert!(text.contains("Preference SQL rewrite:"), "{text}");
                assert!(text.contains("NOT EXISTS"), "{text}");
                assert!(text.contains("Host engine plan:"), "{text}");
            }
            other => panic!("expected explain, got {other:?}"),
        }
    }

    #[test]
    fn threads_knob_is_clamped_and_preserves_results() {
        let mut c = PrefSqlConnection::new();
        assert!(c.threads() >= 1);
        c.set_threads(0);
        assert_eq!(c.threads(), 1);
        c.set_threads(8);
        assert_eq!(c.threads(), 8);
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (3), (9)").unwrap();
        c.set_mode(ExecutionMode::native());
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![3]);
    }

    #[test]
    fn window_knob_is_clamped_and_preserves_results() {
        let mut c = PrefSqlConnection::new();
        c.set_window_bytes(None);
        assert_eq!(c.window_bytes(), None);
        // Sub-minimum budgets clamp up to the smallest sane window.
        c.set_window_bytes(Some(1));
        assert_eq!(c.window_bytes(), Some(crate::knobs::MIN_WINDOW_BYTES));
        c.set_window_bytes(Some(1 << 20));
        assert_eq!(c.window_bytes(), Some(1 << 20));
        // A bounded window returns the same rows, with metrics attached.
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (3), (9)").unwrap();
        c.set_mode(ExecutionMode::native());
        c.set_window_bytes(Some(4096));
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![3]);
        let m = rs.spill_metrics().expect("window budget reports metrics");
        assert_eq!(m.runs_written, 0, "3 tuples fit any window");
        assert_eq!(m.passes, 0, "stayed in memory");
        // Without a budget there are no metrics.
        c.set_window_bytes(None);
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert!(rs.spill_metrics().is_none());
    }

    #[test]
    fn script_execution() {
        let mut c = PrefSqlConnection::new();
        let results = c
            .execute_script(
                "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (3), (1); \
                 SELECT x FROM t PREFERRING LOWEST(x);",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(matches!(&results[2], QueryResult::Rows(rs) if rs.len() == 1));
    }
}
