//! The connection facade — the in-process equivalent of the paper's
//! "Preference ODBC/JDBC driver" (§3.1): applications submit Preference
//! SQL; preference queries are rewritten to standard SQL and forwarded to
//! the host engine; everything else passes through untouched.
//!
//! Since the concurrent-runtime refactor this type is a thin
//! single-session façade: all execution state lives in [`Session`], and
//! a `PrefSqlConnection` is simply a session over its own private
//! [`EngineCore`]. Embedders who want many
//! connections against one catalog use [`Session::with_core`] directly
//! (or the `prefsql-server` front end).

use crate::result::ResultSet;
use crate::session::Session;
use prefsql_engine::{Engine, EngineCore};
use prefsql_parser::ast::Statement;
use prefsql_types::Result;
use std::sync::Arc;

pub use crate::session::{ExecutionMode, QueryResult};

/// An in-process Preference SQL connection: rewriter + host engine +
/// named-preference registry, wrapped in one self-contained session.
pub struct PrefSqlConnection {
    session: Session,
}

impl Default for PrefSqlConnection {
    fn default() -> Self {
        PrefSqlConnection::new()
    }
}

impl PrefSqlConnection {
    /// A fresh connection with an empty catalog. Preference queries
    /// execute via the paper's rewrite by default; switching to native
    /// evaluation without naming an algorithm
    /// ([`ExecutionMode::native`]) uses [`crate::SkylineAlgo::Auto`],
    /// the default native mode.
    pub fn new() -> Self {
        PrefSqlConnection {
            session: Session::new(),
        }
    }

    /// A connection sharing an existing engine core with other sessions.
    pub fn with_core(core: Arc<EngineCore>) -> Self {
        PrefSqlConnection {
            session: Session::with_core(core),
        }
    }

    /// The underlying session (knobs, spill dir, shared-core handle).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Switch the evaluation strategy for preference queries.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.session.set_mode(mode);
    }

    /// The current evaluation strategy.
    pub fn mode(&self) -> ExecutionMode {
        self.session.mode()
    }

    /// Cap the parallel-window degree for native preference evaluation
    /// (clamped to at least 1; `1` forces the serial window). The
    /// skyline only actually parallelizes above
    /// [`prefsql_pref::PARALLEL_CUTOFF`] candidates.
    pub fn set_threads(&mut self, threads: usize) {
        self.session.set_threads(threads);
    }

    /// The parallel-window degree knob.
    pub fn threads(&self) -> usize {
        self.session.threads()
    }

    /// Set the external-memory window budget for native preference
    /// evaluation: `Some(bytes)` streams candidate sets larger than the
    /// budget through the bounded-window multi-pass BNL with
    /// spill-to-disk overflow runs (clamped to at least
    /// [`crate::knobs::MIN_WINDOW_BYTES`]); `None` never spills.
    pub fn set_window_bytes(&mut self, window_bytes: Option<usize>) {
        self.session.set_window_bytes(window_bytes);
    }

    /// The external-memory window budget knob.
    pub fn window_bytes(&self) -> Option<usize> {
        self.session.window_bytes()
    }

    /// The underlying host engine (catalog access, stats, index toggles).
    pub fn engine(&self) -> &Engine {
        self.session.engine()
    }

    /// Mutable host-engine access (bulk loading, index toggles).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.session.engine_mut()
    }

    /// Execute one statement of Preference SQL.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.session.execute(sql)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        self.session.execute_script(sql)
    }

    /// Execute a query and return its rows (errors on non-SELECT).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.session.query(sql)
    }

    /// The SQL a preference statement is rewritten into (passthrough
    /// statements return `None`). Purely introspective — nothing is
    /// executed.
    pub fn rewritten_sql(&mut self, sql: &str) -> Result<Option<String>> {
        self.session.rewritten_sql(sql)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        self.session.execute_statement(stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_standard_sql() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        assert_eq!(
            c.execute("INSERT INTO t VALUES (1), (2)").unwrap(),
            QueryResult::Count(2)
        );
        let rs = c.query("SELECT x FROM t ORDER BY x DESC").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![2, 1]);
    }

    #[test]
    fn preference_query_executes_via_rewrite() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (9), (14), (20)")
            .unwrap();
        let rs = c.query("SELECT x FROM t PREFERRING x AROUND 13").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![14]);
    }

    #[test]
    fn select_star_hides_level_columns() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER, y VARCHAR)").unwrap();
        c.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let rs = c.query("SELECT * FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_names(), vec!["x", "y"]);
        assert_eq!(rs.rows().len(), 1);
    }

    #[test]
    fn rewritten_sql_introspection() {
        let mut c = PrefSqlConnection::new();
        let sql = c
            .rewritten_sql("SELECT * FROM t PREFERRING LOWEST(x)")
            .unwrap()
            .unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
        assert!(c.rewritten_sql("SELECT * FROM t").unwrap().is_none());
    }

    #[test]
    fn preference_ddl_is_handled_in_layer() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE cars (price INTEGER)").unwrap();
        c.execute("INSERT INTO cars VALUES (10), (20)").unwrap();
        let r = c
            .execute("CREATE PREFERENCE cheap AS LOWEST(price)")
            .unwrap();
        assert!(matches!(r, QueryResult::Message(_)));
        let rs = c
            .query("SELECT price FROM cars PREFERRING PREFERENCE cheap")
            .unwrap();
        assert_eq!(rs.column_as_ints(0), vec![10]);
        c.execute("DROP PREFERENCE cheap").unwrap();
        assert!(c
            .query("SELECT price FROM cars PREFERRING PREFERENCE cheap")
            .is_err());
    }

    #[test]
    fn explain_shows_rewrite_and_plan() {
        let mut c = PrefSqlConnection::new();
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        let out = c
            .execute("EXPLAIN SELECT * FROM t PREFERRING LOWEST(x)")
            .unwrap();
        match out {
            QueryResult::Explain(text) => {
                assert!(text.contains("Preference SQL rewrite:"), "{text}");
                assert!(text.contains("NOT EXISTS"), "{text}");
                assert!(text.contains("Host engine plan:"), "{text}");
            }
            other => panic!("expected explain, got {other:?}"),
        }
    }

    #[test]
    fn threads_knob_is_clamped_and_preserves_results() {
        let mut c = PrefSqlConnection::new();
        assert!(c.threads() >= 1);
        c.set_threads(0);
        assert_eq!(c.threads(), 1);
        c.set_threads(8);
        assert_eq!(c.threads(), 8);
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (3), (9)").unwrap();
        c.set_mode(ExecutionMode::native());
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![3]);
    }

    #[test]
    fn window_knob_is_clamped_and_preserves_results() {
        let mut c = PrefSqlConnection::new();
        c.set_window_bytes(None);
        assert_eq!(c.window_bytes(), None);
        // Sub-minimum budgets clamp up to the smallest sane window.
        c.set_window_bytes(Some(1));
        assert_eq!(c.window_bytes(), Some(crate::knobs::MIN_WINDOW_BYTES));
        c.set_window_bytes(Some(1 << 20));
        assert_eq!(c.window_bytes(), Some(1 << 20));
        // A bounded window returns the same rows, with metrics attached.
        c.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.execute("INSERT INTO t VALUES (5), (3), (9)").unwrap();
        c.set_mode(ExecutionMode::native());
        c.set_window_bytes(Some(4096));
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(rs.column_as_ints(0), vec![3]);
        let m = rs.spill_metrics().expect("window budget reports metrics");
        assert_eq!(m.runs_written, 0, "3 tuples fit any window");
        assert_eq!(m.passes, 0, "stayed in memory");
        // Without a budget there are no metrics.
        c.set_window_bytes(None);
        let rs = c.query("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert!(rs.spill_metrics().is_none());
    }

    #[test]
    fn script_execution() {
        let mut c = PrefSqlConnection::new();
        let results = c
            .execute_script(
                "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (3), (1); \
                 SELECT x FROM t PREFERRING LOWEST(x);",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(matches!(&results[2], QueryResult::Rows(rs) if rs.len() == 1));
    }
}
