//! Result sets returned to the application.

use prefsql_engine::Relation;
use prefsql_pref::SpillMetrics;
use prefsql_storage::PoolStats;
use prefsql_types::{Schema, Tuple, Value};
use std::fmt;

/// Materialized-preference-view observability of one statement: whether
/// a SELECT was served from a view's stored winner set, and how many
/// views a DML statement incrementally maintained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewActivity {
    /// Name of the materialized preference view that served this query,
    /// when the native path took the cache hit.
    pub served_by: Option<String>,
    /// Number of materialized preference views this statement
    /// incrementally maintained (DML on their base tables).
    pub maintained: u64,
}

/// A query result: schema plus rows, with display helpers for the
/// examples and the experiment harness. Native preference queries
/// evaluated under a window budget additionally carry their
/// [`SpillMetrics`]; statements touching materialized preference views
/// carry their [`ViewActivity`].
#[derive(Debug, Clone)]
pub struct ResultSet {
    schema: Schema,
    rows: Vec<Tuple>,
    spill: Option<SpillMetrics>,
    views: Option<ViewActivity>,
    pool: Option<PoolStats>,
    /// Dominance comparisons the maximal-set selection performed (native
    /// preference path; 0 for rewrite-path and plain SQL results).
    dominance: u64,
}

/// Result equality is *relation* equality (schema and rows). Spill
/// metrics, view activity and buffer-pool counters are execution
/// observability — a view cache hit and a cold recompute of the same
/// query return equal results, and so do a mem-backed and a paged run,
/// which is exactly what the differential suites assert.
impl PartialEq for ResultSet {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl ResultSet {
    /// Wrap an engine relation.
    pub fn new(rel: Relation) -> Self {
        ResultSet {
            schema: rel.schema,
            rows: rel.rows,
            spill: None,
            views: None,
            pool: None,
            dominance: 0,
        }
    }

    /// Attach external-memory spill metrics (native path only).
    pub(crate) fn with_spill(mut self, spill: Option<SpillMetrics>) -> Self {
        self.spill = spill;
        self
    }

    /// Attach materialized-view observability.
    pub(crate) fn with_views(mut self, views: Option<ViewActivity>) -> Self {
        self.views = views;
        self
    }

    /// Attach this statement's buffer-pool delta (paged backend only).
    pub(crate) fn with_pool(mut self, pool: Option<PoolStats>) -> Self {
        self.pool = pool;
        self
    }

    /// Attach the dominance-comparison tally of the evaluation that
    /// produced this result (native preference path).
    pub(crate) fn with_dominance(mut self, n: u64) -> Self {
        self.dominance = n;
        self
    }

    /// Dominance comparisons ([`prefsql_pref`]'s `Preference::better`
    /// calls) the maximal-set selection behind this result performed —
    /// the paper's unit of preference-evaluation cost. Zero for
    /// rewrite-path results, plain SQL, and view cache hits.
    pub fn dominance_tests(&self) -> u64 {
        self.dominance
    }

    /// Spill metrics of the evaluation that produced this result:
    /// `Some` whenever a window budget governed a native preference
    /// query (`passes == 0` means the candidates fit in the window and
    /// the selection stayed in memory), `None` otherwise.
    pub fn spill_metrics(&self) -> Option<&SpillMetrics> {
        self.spill.as_ref()
    }

    /// Materialized-view observability of the statement that produced
    /// this result: `Some` when a view served the query or a DML
    /// statement maintained at least one view, `None` otherwise.
    pub fn view_activity(&self) -> Option<&ViewActivity> {
        self.views.as_ref()
    }

    /// Buffer-pool counters for the statement that produced this result:
    /// `Some` (a delta over the shared pool — hits, misses, evictions,
    /// write-backs) whenever the session's core runs the paged backend,
    /// `None` on the in-memory default.
    pub fn pool_stats(&self) -> Option<&PoolStats> {
        self.pool.as_ref()
    }

    /// The result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names, in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect()
    }

    /// All values of column `idx`.
    pub fn column(&self, idx: usize) -> Vec<&Value> {
        self.rows.iter().map(|r| &r[idx]).collect()
    }

    /// All values of column `idx` rendered as strings.
    pub fn column_as_strings(&self, idx: usize) -> Vec<String> {
        self.rows.iter().map(|r| r[idx].to_string()).collect()
    }

    /// All values of column `idx` as i64 (panics on non-integers; test and
    /// example convenience).
    pub fn column_as_ints(&self, idx: usize) -> Vec<i64> {
        self.rows
            .iter()
            .map(|r| r[idx].as_int().expect("integer column"))
            .collect()
    }

    /// Drop the internal `prefsql_*` level/grouping columns that a
    /// `SELECT *` preference query exposes through the rewrite.
    pub(crate) fn strip_generated_columns(self) -> Self {
        let keep: Vec<usize> = self
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.name.starts_with(prefsql_rewrite::levels::GEN_PREFIX))
            .map(|(i, _)| i)
            .collect();
        if keep.len() == self.schema.len() {
            return self;
        }
        let columns = keep
            .iter()
            .map(|&i| self.schema.column(i).clone())
            .collect();
        let schema = Schema::new(columns).expect("stripping preserves uniqueness");
        let rows = self.rows.iter().map(|r| r.project(&keep)).collect();
        ResultSet {
            schema,
            rows,
            spill: self.spill,
            views: self.views,
            pool: self.pool,
            dominance: self.dominance,
        }
    }
}

impl fmt::Display for ResultSet {
    /// ASCII table rendering, aligned, with a header row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (v, w) in row.iter().zip(&widths) {
                write!(f, " {v:w$} |")?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        writeln!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{tuple, Column, DataType};

    fn sample() -> ResultSet {
        ResultSet::new(Relation {
            schema: Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("make", DataType::Str),
            ])
            .unwrap(),
            rows: vec![tuple![1, "audi"], tuple![2, "bmw"]],
        })
    }

    #[test]
    fn accessors() {
        let rs = sample();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.column_names(), vec!["id", "make"]);
        assert_eq!(rs.column_as_ints(0), vec![1, 2]);
        assert_eq!(rs.column_as_strings(1), vec!["audi", "bmw"]);
    }

    #[test]
    fn display_renders_table() {
        let out = sample().to_string();
        assert!(out.contains("| id | make |"), "{out}");
        assert!(out.contains("| 1  | audi |"), "{out}");
        assert!(out.contains("(2 rows)"), "{out}");
    }

    #[test]
    fn strip_generated_columns_removes_internal_names() {
        let rs = ResultSet::new(Relation {
            schema: Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("prefsql_p0", DataType::Int),
                Column::new("prefsql_g0", DataType::Str),
            ])
            .unwrap(),
            rows: vec![tuple![1, 5, "x"]],
        });
        let stripped = rs.strip_generated_columns();
        assert_eq!(stripped.column_names(), vec!["id"]);
        assert_eq!(stripped.rows()[0].len(), 1);
    }
}
