//! Session resource knobs and their `PREFSQL_*` environment ceilings.
//!
//! Three knobs share one resolution policy (this module exists so they
//! can't drift):
//!
//! * `PREFSQL_THREADS` — parallel-window degree ceiling (the shell's
//!   `\threads N`); absent falls back to the host width.
//! * `PREFSQL_WINDOW` — external-memory window budget in bytes, with
//!   optional `k`/`m` suffixes (KiB/MiB; the shell's `\window N[k|m]`);
//!   absent means unbounded (no spilling).
//! * `PREFSQL_POOL` — buffer-pool size for the paged storage backend
//!   (the shell's `\pool N[k|m]`); absent falls back to
//!   [`DEFAULT_POOL_BYTES`]. Resolved by the engine core at
//!   construction, not cached process-wide, so every core (and every CI
//!   matrix leg) sees the environment it was started under.
//!
//! The parsing/clamping primitives themselves live in
//! [`prefsql_types::knobs`] — below the storage layer, which sizes the
//! buffer pool with the same parser — and are re-exported here so
//! existing callers keep compiling.

use std::sync::OnceLock;

pub use prefsql_types::knobs::{
    ceiling_from_value, fmt_bytes, parse_size, DEFAULT_POOL_BYTES, MIN_POOL_BYTES, MIN_WINDOW_BYTES,
};

/// The session-default parallel degree: `PREFSQL_THREADS` when set
/// (ceiling semantics, minimum 1 = serial), otherwise the host's
/// available parallelism. Resolved once per process and cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("PREFSQL_THREADS") {
        Ok(v) => ceiling_from_value(&v, |s| s.parse::<usize>().ok(), 1),
        Err(_) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(1),
    })
}

/// The session-default external-memory window budget: `PREFSQL_WINDOW`
/// when set (ceiling semantics, minimum [`MIN_WINDOW_BYTES`]), otherwise
/// `None` — unbounded, never spilling. Resolved once per process and
/// cached.
pub fn default_window_bytes() -> Option<usize> {
    static DEFAULT: OnceLock<Option<usize>> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PREFSQL_WINDOW")
            .ok()
            .map(|v| ceiling_from_value(&v, parse_size, MIN_WINDOW_BYTES))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threads_of(raw: &str) -> usize {
        ceiling_from_value(raw, |s| s.parse::<usize>().ok(), 1)
    }

    fn window_of(raw: &str) -> usize {
        ceiling_from_value(raw, parse_size, MIN_WINDOW_BYTES)
    }

    #[test]
    fn thread_ceiling_resolution() {
        assert_eq!(threads_of("4"), 4);
        assert_eq!(threads_of(" 2 "), 2);
        // Zero or garbage caps at serial — the knob is a ceiling, so a
        // set-but-invalid value must never raise the degree.
        assert_eq!(threads_of("0"), 1);
        assert_eq!(threads_of("banana"), 1);
        assert_eq!(threads_of(""), 1);
        // A huge unparseable value (u64 overflow) is garbage, not ∞.
        assert_eq!(threads_of("99999999999999999999999999"), 1);
    }

    #[test]
    fn window_ceiling_resolution() {
        assert_eq!(window_of("65536"), 65536);
        assert_eq!(window_of("64k"), 65536);
        assert_eq!(window_of("1M"), 1 << 20);
        // Zero, sub-minimum, and garbage all cap at the minimum window.
        assert_eq!(window_of("0"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("100"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("lots"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("99999999999999999999999999"), MIN_WINDOW_BYTES);
        // Suffix overflow is garbage too, not a wrapped tiny number.
        assert_eq!(window_of("999999999999999999m"), MIN_WINDOW_BYTES);
    }

    #[test]
    fn size_suffixes_reexported() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("k"), None);
        assert_eq!(parse_size("99999999999999999999k"), None);
    }

    #[test]
    fn defaults_are_sane() {
        // Whatever the environment says, the resolved defaults respect
        // the knob minimums.
        assert!(default_threads() >= 1);
        if let Some(w) = default_window_bytes() {
            assert!(w >= MIN_WINDOW_BYTES);
        }
        const _: () = assert!(MIN_POOL_BYTES >= MIN_WINDOW_BYTES);
        const _: () = assert!(DEFAULT_POOL_BYTES > MIN_POOL_BYTES);
    }
}
