//! Session resource knobs and their `PREFSQL_*` environment ceilings.
//!
//! Two knobs share one resolution policy (this module exists so they
//! can't drift):
//!
//! * `PREFSQL_THREADS` — parallel-window degree ceiling (the shell's
//!   `\threads N`); absent falls back to the host width.
//! * `PREFSQL_WINDOW` — external-memory window budget in bytes, with
//!   optional `k`/`m` suffixes (KiB/MiB; the shell's `\window N[k|m]`);
//!   absent means unbounded (no spilling).
//!
//! The shared semantics, pinned by [`ceiling_from_value`]: **a set env
//! var is a ceiling**. A parseable value is clamped to at least the
//! knob's minimum; zero or garbage caps *at* the minimum — a
//! set-but-invalid value must never escalate past the most conservative
//! setting (serial execution, the smallest window).

use std::sync::OnceLock;

/// The smallest admissible external-memory window budget (4 KiB).
/// Budgets below this thrash: the window always admits at least one
/// tuple, but a sub-page budget spills nearly every candidate every
/// pass. Both the env ceiling and the shell's `\window` clamp up to it.
pub const MIN_WINDOW_BYTES: usize = 4096;

/// Resolve a *set* `PREFSQL_*` ceiling value: parse it with `parse` and
/// clamp to at least `min`; zero or garbage (unparseable, overflowing)
/// caps at `min`. Callers handle the unset case themselves — the two
/// knobs fall back differently (host width vs unbounded).
pub fn ceiling_from_value<T: Ord>(raw: &str, parse: impl FnOnce(&str) -> Option<T>, min: T) -> T {
    match parse(raw.trim()) {
        Some(v) if v > min => v,
        _ => min,
    }
}

/// Parse a byte size with an optional binary suffix: `65536`, `64k`,
/// `1M` (case-insensitive; `k` = KiB, `m` = MiB). `None` on garbage or
/// overflow.
pub fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, factor) = match s.char_indices().next_back()? {
        (i, 'k') | (i, 'K') => (&s[..i], 1024usize),
        (i, 'm') | (i, 'M') => (&s[..i], 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok()?.checked_mul(factor)
}

/// The session-default parallel degree: `PREFSQL_THREADS` when set
/// (ceiling semantics, minimum 1 = serial), otherwise the host's
/// available parallelism. Resolved once per process and cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("PREFSQL_THREADS") {
        Ok(v) => ceiling_from_value(&v, |s| s.parse::<usize>().ok(), 1),
        Err(_) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(1),
    })
}

/// The session-default external-memory window budget: `PREFSQL_WINDOW`
/// when set (ceiling semantics, minimum [`MIN_WINDOW_BYTES`]), otherwise
/// `None` — unbounded, never spilling. Resolved once per process and
/// cached.
pub fn default_window_bytes() -> Option<usize> {
    static DEFAULT: OnceLock<Option<usize>> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PREFSQL_WINDOW")
            .ok()
            .map(|v| ceiling_from_value(&v, parse_size, MIN_WINDOW_BYTES))
    })
}

/// Render a byte count the way the shell and EXPLAIN display it:
/// `512 B`, `64 KiB`, `1.5 MiB`.
pub fn fmt_bytes(n: u64) -> String {
    if n < 1024 {
        format!("{n} B")
    } else if n < 1024 * 1024 {
        let kib = n as f64 / 1024.0;
        if kib.fract() == 0.0 {
            format!("{kib:.0} KiB")
        } else {
            format!("{kib:.1} KiB")
        }
    } else {
        let mib = n as f64 / (1024.0 * 1024.0);
        if mib.fract() == 0.0 {
            format!("{mib:.0} MiB")
        } else {
            format!("{mib:.1} MiB")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threads_of(raw: &str) -> usize {
        ceiling_from_value(raw, |s| s.parse::<usize>().ok(), 1)
    }

    fn window_of(raw: &str) -> usize {
        ceiling_from_value(raw, parse_size, MIN_WINDOW_BYTES)
    }

    #[test]
    fn thread_ceiling_resolution() {
        assert_eq!(threads_of("4"), 4);
        assert_eq!(threads_of(" 2 "), 2);
        // Zero or garbage caps at serial — the knob is a ceiling, so a
        // set-but-invalid value must never raise the degree.
        assert_eq!(threads_of("0"), 1);
        assert_eq!(threads_of("banana"), 1);
        assert_eq!(threads_of(""), 1);
        // A huge unparseable value (u64 overflow) is garbage, not ∞.
        assert_eq!(threads_of("99999999999999999999999999"), 1);
    }

    #[test]
    fn window_ceiling_resolution() {
        assert_eq!(window_of("65536"), 65536);
        assert_eq!(window_of("64k"), 65536);
        assert_eq!(window_of("1M"), 1 << 20);
        // Zero, sub-minimum, and garbage all cap at the minimum window.
        assert_eq!(window_of("0"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("100"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("lots"), MIN_WINDOW_BYTES);
        assert_eq!(window_of("99999999999999999999999999"), MIN_WINDOW_BYTES);
        // Suffix overflow is garbage too, not a wrapped tiny number.
        assert_eq!(window_of("999999999999999999m"), MIN_WINDOW_BYTES);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("4K"), Some(4096));
        assert_eq!(parse_size("2m"), Some(2 << 20));
        assert_eq!(parse_size(" 8 k "), Some(8192));
        assert_eq!(parse_size("k"), None);
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("4g"), None);
        assert_eq!(parse_size("-1"), None);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KiB");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(1 << 20), "1 MiB");
        assert_eq!(fmt_bytes(3 << 19), "1.5 MiB");
    }

    #[test]
    fn defaults_are_sane() {
        // Whatever the environment says, the resolved defaults respect
        // the knob minimums.
        assert!(default_threads() >= 1);
        if let Some(w) = default_window_bytes() {
            assert!(w >= MIN_WINDOW_BYTES);
        }
    }
}
