//! `EXPLAIN ANALYZE` differential suite.
//!
//! The analyzed run *is* the plain run with instrumentation attached:
//! results and catalog side effects must be byte-identical, and the
//! counters it reports must match ground truth (BNL dominance
//! comparisons bounded by n², hash-join probe rows exact).

use prefsql::engine::{BackendKind, EngineCore};
use prefsql::{ExecutionMode, QueryResult, Session, SkylineAlgo};

/// A session over the paper's §3.2-style cars table.
fn seeded() -> Session {
    let mut s = Session::new();
    run(
        &mut s,
        "CREATE TABLE cars (id INTEGER NOT NULL, price INTEGER, mileage INTEGER, \
         make VARCHAR)",
    );
    run(
        &mut s,
        "INSERT INTO cars VALUES \
         (1, 40000, 15000, 'Audi'), (2, 35000, 30000, 'BMW'), \
         (3, 20000, 10000, 'VW'), (4, 20000, 60000, 'Opel'), \
         (5, 55000, 5000, 'Porsche'), (6, 35000, 30000, 'BMW')",
    );
    s
}

fn run(s: &mut Session, sql: &str) -> QueryResult {
    s.execute(sql)
        .unwrap_or_else(|e| panic!("statement failed: {sql}: {e}"))
}

/// Run `EXPLAIN ANALYZE <sql>` and return the report text.
fn analyze(s: &mut Session, sql: &str) -> String {
    match run(s, &format!("EXPLAIN ANALYZE {sql}")) {
        QueryResult::Explain(text) => text,
        other => panic!("EXPLAIN ANALYZE produced {other:?}"),
    }
}

/// Render a query's full result, ordered, for byte-level comparison.
fn dump(s: &mut Session, sql: &str) -> String {
    format!("{}", s.query(sql).expect(sql))
}

/// Pull `<label>=<number>` out of a report (first occurrence).
fn counter(text: &str, label: &str) -> u64 {
    let key = format!("{label}=");
    let at = text
        .find(&key)
        .unwrap_or_else(|| panic!("no `{key}` in:\n{text}"));
    let digits: String = text[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("counter digits")
}

const PREF_SELECT: &str =
    "SELECT id, price, mileage FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)";

#[test]
fn analyzed_select_leaves_results_byte_identical() {
    let mut plain = seeded();
    let mut analyzed = seeded();

    let expected = dump(&mut plain, PREF_SELECT);
    let report = analyze(&mut analyzed, PREF_SELECT);
    // Rewrite mode reports the rewrite plus the executed host plan.
    assert!(report.contains("Preference SQL rewrite:"), "{report}");
    assert!(report.contains("Host engine plan:"), "{report}");
    assert!(report.contains("actual rows="), "{report}");
    assert!(report.contains("Execution: returned"), "{report}");

    // The analyzed run evaluated the very same statement: re-running it
    // plainly on either session yields the same bytes.
    assert_eq!(dump(&mut analyzed, PREF_SELECT), expected);
    assert_eq!(dump(&mut plain, PREF_SELECT), expected);
}

#[test]
fn analyzed_dml_side_effects_byte_identical() {
    let mut plain = seeded();
    let mut analyzed = seeded();
    for s in [&mut plain, &mut analyzed] {
        run(
            s,
            "CREATE MATERIALIZED VIEW sky AS SELECT id, price, mileage FROM cars \
             PREFERRING LOWEST(price) AND LOWEST(mileage)",
        );
    }

    let statements = [
        "INSERT INTO cars VALUES (7, 18000, 8000, 'Skoda'), (8, 90000, 90000, 'Tank')",
        "UPDATE cars SET price = 15000 WHERE id = 4",
        "DELETE FROM cars WHERE id = 7",
    ];
    for sql in statements {
        let a = run(&mut plain, sql);
        let report = analyze(&mut analyzed, sql);
        // The analyzed run executed the DML for real and says so.
        if let QueryResult::Count(n) = a {
            assert!(
                report.contains(&format!("affected {n} row(s)")),
                "{sql}: {report}"
            );
        }
        // Base table and the incrementally-maintained view agree byte
        // for byte after every statement.
        for probe in [
            "SELECT * FROM cars ORDER BY id",
            "SELECT * FROM sky ORDER BY id",
        ] {
            assert_eq!(
                dump(&mut analyzed, probe),
                dump(&mut plain, probe),
                "diverged after {sql}"
            );
        }
    }
}

#[test]
fn bnl_dominance_comparisons_bounded_by_n_squared() {
    let mut s = seeded();
    s.set_mode(ExecutionMode::Native(SkylineAlgo::Bnl));
    let n: u64 = 6;

    let expected = dump(&mut s, PREF_SELECT);
    let expected_winners = s.query(PREF_SELECT).unwrap().len();
    let report = analyze(&mut s, PREF_SELECT);
    assert!(report.contains("Native preference plan:"), "{report}");

    // "Preference evaluation: W winner(s), C dominance comparison(s)"
    let line = report
        .lines()
        .find(|l| l.starts_with("Preference evaluation:"))
        .unwrap_or_else(|| panic!("no evaluation line in:\n{report}"));
    let nums: Vec<u64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap())
        .collect();
    let (winners, comparisons) = (nums[0], nums[1]);
    assert!(comparisons >= 1, "{line}");
    assert!(comparisons <= n * n, "BNL exceeded n²: {line}");
    assert_eq!(winners as usize, expected_winners, "{line}");

    // The analyzed native run changed nothing observable.
    assert_eq!(dump(&mut s, PREF_SELECT), expected);
}

#[test]
fn hash_join_probe_rows_exact() {
    let mut s = Session::new();
    run(&mut s, "CREATE TABLE a (k INTEGER, x INTEGER)");
    run(&mut s, "CREATE TABLE b (k INTEGER, y INTEGER)");
    run(&mut s, "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)");
    run(
        &mut s,
        "INSERT INTO b VALUES (1, 1), (1, 2), (2, 3), (9, 4), (9, 5)",
    );

    let report = analyze(&mut s, "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k");
    assert!(report.contains("join=hash"), "{report}");

    // In one in-memory pass the probe side streams through exactly
    // once: probe rows equal that side's cardinality, build rows the
    // other's.
    let (build_n, probe_n) = if report.contains("build=left") {
        (3, 5)
    } else {
        assert!(report.contains("build=right"), "{report}");
        (5, 3)
    };
    assert_eq!(counter(&report, "build_rows"), build_n, "{report}");
    assert_eq!(counter(&report, "probe_rows"), probe_n, "{report}");
    // Zero-valued counters are suppressed — nothing spilled, no key.
    assert!(!report.contains("spilled_rows="), "{report}");
    assert!(report.contains("Execution: returned 3 row(s)"), "{report}");
}

/// The ISSUE's acceptance scenario: a three-table hash-join preference
/// query under `EXPLAIN ANALYZE` reports per-node rows/time, the
/// dominance-comparison tally, and spill/pool counters.
#[test]
fn three_table_join_preference_query_reports_all_counters() {
    let core = EngineCore::shared();
    core.set_backend(BackendKind::Paged).unwrap();
    let mut s = Session::with_core(core);
    s.set_mode(ExecutionMode::native());
    run(
        &mut s,
        "CREATE TABLE cars (id INTEGER, dealer INTEGER, price INTEGER, mileage INTEGER)",
    );
    run(&mut s, "CREATE TABLE dealers (id INTEGER, region INTEGER)");
    run(&mut s, "CREATE TABLE regions (id INTEGER, name VARCHAR)");
    // Anti-correlated price/mileage: every car is a skyline winner, so
    // the BMO window must hold all of them — far past the 4 KiB floor —
    // and the external skyline has to spill runs.
    let mut rows = Vec::new();
    for i in 0..200 {
        rows.push(format!(
            "({i}, {}, {}, {})",
            i % 8,
            20000 + i * 50,
            100000 - i * 50
        ));
    }
    run(
        &mut s,
        &format!("INSERT INTO cars VALUES {}", rows.join(", ")),
    );
    let dealers: Vec<String> = (0..8).map(|i| format!("({i}, {})", i % 3)).collect();
    run(
        &mut s,
        &format!("INSERT INTO dealers VALUES {}", dealers.join(", ")),
    );
    run(
        &mut s,
        "INSERT INTO regions VALUES (0, 'north'), (1, 'south'), (2, 'west')",
    );

    // A window too small for 120 joined rows forces the external
    // skyline to spill runs.
    s.set_window_bytes(Some(512));
    let sql = "SELECT cars.id, cars.price, cars.mileage, regions.name \
               FROM cars JOIN dealers ON cars.dealer = dealers.id \
               JOIN regions ON dealers.region = regions.id \
               PREFERRING LOWEST(cars.price) AND LOWEST(cars.mileage)";

    let expected = dump(&mut s, sql);
    let report = analyze(&mut s, sql);

    // Per-node actuals on the executed source tree, joins included.
    assert!(report.contains("Source plan (actual):"), "{report}");
    assert!(report.contains("join=hash"), "{report}");
    assert!(report.contains("actual rows="), "{report}");
    assert!(counter(&report, "probe_rows") > 0, "{report}");
    // The paper's cost unit.
    assert!(report.contains("dominance comparison(s)"), "{report}");
    // Spill and buffer-pool activity for this statement.
    assert!(report.contains("Spill: window="), "{report}");
    assert!(counter(&report, "spilled_runs") > 0, "{report}");
    assert!(report.contains("Pool: size="), "{report}");

    // Side effects: none — the analyzed run returns the same skyline.
    assert_eq!(dump(&mut s, sql), expected);
}
