//! # prefsql-types
//!
//! Foundation crate of the Preference SQL reproduction: SQL values with
//! three-valued comparison semantics, data types, schemas, tuples, a civil
//! date type and the shared error type used across all layers.
//!
//! Everything in the stack — storage, parser, engine, preference model and
//! the rewriter — speaks in terms of [`Value`], [`DataType`], [`Schema`] and
//! [`Tuple`] defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod date;
pub mod error;
pub mod knobs;
pub mod schema;
pub mod tuple;
pub mod value;

pub use date::Date;
pub use error::{Error, Result};
pub use schema::{Column, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
