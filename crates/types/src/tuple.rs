//! Tuples: ordered collections of [`Value`]s matching a [`Schema`].

use crate::error::Result;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A row of values. Positionally aligned with some [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Field at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Concatenate two tuples (join output).
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Validate the tuple against `schema` (arity, types, nullability).
    pub fn check_against(&self, schema: &Schema) -> Result<()> {
        if self.values.len() != schema.len() {
            return Err(crate::error::Error::Type(format!(
                "tuple has {} fields but schema {} has {}",
                self.values.len(),
                schema,
                schema.len()
            )));
        }
        for (v, c) in self.values.iter().zip(schema.columns()) {
            c.check_value(v)?;
        }
        Ok(())
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "audi", 39_999.5, Value::Null]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    #[test]
    fn join_concatenates() {
        let a = tuple![1, "x"];
        let b = tuple![2.5];
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j[0], Value::Int(1));
        assert_eq!(j[2], Value::Float(2.5));
    }

    #[test]
    fn project_reorders() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![30, 10]);
    }

    #[test]
    fn check_against_schema() {
        let s = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("name", DataType::Str),
        ])
        .unwrap();
        assert!(tuple![1, "ok"].check_against(&s).is_ok());
        assert!(tuple![1].check_against(&s).is_err()); // arity
        assert!(tuple!["oops", "x"].check_against(&s).is_err()); // type
        let mut nullable_name = tuple![2, "y"].into_values();
        nullable_name[1] = Value::Null;
        assert!(Tuple::new(nullable_name).check_against(&s).is_ok());
    }

    #[test]
    fn display_renders_values() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
    }
}
