//! Shared error type for the whole Preference SQL stack.
//!
//! A single error enum keeps signatures uniform across crates; the variant
//! records which layer produced the failure so diagnostics stay actionable.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Error raised anywhere in the Preference SQL stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing or parsing failure, with a human-readable message that includes
    /// the offending position where available.
    Parse(String),
    /// Type-checking or value-coercion failure.
    Type(String),
    /// Catalog/storage failure (unknown table, duplicate column, ...).
    Catalog(String),
    /// Logical planning failure (unresolvable column, unsupported shape, ...).
    Plan(String),
    /// Runtime execution failure (division by zero, bad cast, ...).
    Exec(String),
    /// Preference-SQL-to-SQL rewrite failure.
    Rewrite(String),
    /// A documented Preference SQL 1.3 restriction was violated (for example
    /// a PREFERRING clause inside a WHERE sub-query).
    Unsupported(String),
    /// I/O failure in the external-memory layer (spill runs, temp files).
    /// Carries the rendered `std::io::Error` so the enum stays `Clone`/`Eq`.
    Io(String),
    /// Concurrency failure in the shared engine core (a catalog lock was
    /// poisoned by a panicking session). Surfaced as an error so one wedged
    /// session cannot take the whole server down.
    Concurrency(String),
}

impl Error {
    /// The layer the error originated from, e.g. `"parse"`.
    pub fn layer(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Type(_) => "type",
            Error::Catalog(_) => "catalog",
            Error::Plan(_) => "plan",
            Error::Exec(_) => "exec",
            Error::Rewrite(_) => "rewrite",
            Error::Unsupported(_) => "unsupported",
            Error::Io(_) => "io",
            Error::Concurrency(_) => "concurrency",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            Error::Parse(m)
            | Error::Type(m)
            | Error::Catalog(m)
            | Error::Plan(m)
            | Error::Exec(m)
            | Error::Rewrite(m)
            | Error::Unsupported(m)
            | Error::Io(m)
            | Error::Concurrency(m) => m,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.layer(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = Error::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.layer(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn layers_are_distinct() {
        let all = [
            Error::Parse(String::new()),
            Error::Type(String::new()),
            Error::Catalog(String::new()),
            Error::Plan(String::new()),
            Error::Exec(String::new()),
            Error::Rewrite(String::new()),
            Error::Unsupported(String::new()),
            Error::Io(String::new()),
            Error::Concurrency(String::new()),
        ];
        let mut layers: Vec<_> = all.iter().map(|e| e.layer()).collect();
        layers.sort_unstable();
        layers.dedup();
        assert_eq!(layers.len(), all.len());
    }
}
