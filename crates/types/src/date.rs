//! A civil (proleptic Gregorian) date type.
//!
//! The paper's examples use dates like `'1999/7/3'` (trip start days). We
//! store dates as a day count since 1970-01-01 so that `DISTANCE(start_day)`
//! in a `BUT ONLY` clause is plain integer arithmetic, and provide exact
//! civil-date conversion (Howard Hinnant's `days_from_civil` algorithm).

use crate::error::{Error, Result};
use std::fmt;

/// A calendar date, stored as days since the epoch 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i64,
}

impl Date {
    /// Construct from a raw day count since 1970-01-01.
    pub const fn from_days(days: i64) -> Self {
        Date { days }
    }

    /// The raw day count since 1970-01-01.
    pub const fn days(self) -> i64 {
        self.days
    }

    /// Construct from a civil year/month/day. Validates the calendar.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(Error::Type(format!("invalid month {month} in date")));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(Error::Type(format!(
                "invalid day {day} for {year:04}-{month:02}"
            )));
        }
        Ok(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Decompose into civil (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Parse `YYYY-MM-DD` or `YYYY/MM/DD` (month/day may be 1 or 2 digits,
    /// matching the paper's `'1999/7/3'` literal style).
    pub fn parse(s: &str) -> Result<Self> {
        let sep = if s.contains('/') { '/' } else { '-' };
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() != 3 {
            return Err(Error::Type(format!("cannot parse '{s}' as a date")));
        }
        let year: i32 = parts[0]
            .parse()
            .map_err(|_| Error::Type(format!("bad year in date '{s}'")))?;
        let month: u32 = parts[1]
            .parse()
            .map_err(|_| Error::Type(format!("bad month in date '{s}'")))?;
        let day: u32 = parts[2]
            .parse()
            .map_err(|_| Error::Type(format!("bad day in date '{s}'")))?;
        Date::from_ymd(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// True iff `year` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

// Civil date for days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().days(), 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).unwrap().days(), -1);
        assert_eq!(Date::from_ymd(2000, 3, 1).unwrap().days(), 11_017);
        // The paper's trip example date.
        let d = Date::parse("1999/7/3").unwrap();
        assert_eq!(d.ymd(), (1999, 7, 3));
    }

    #[test]
    fn parse_both_separators() {
        assert_eq!(
            Date::parse("1999-07-03").unwrap(),
            Date::parse("1999/7/3").unwrap()
        );
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::from_ymd(2001, 2, 29).is_err());
        assert!(Date::from_ymd(2000, 2, 29).is_ok()); // leap
        assert!(Date::from_ymd(1999, 13, 1).is_err());
        assert!(Date::from_ymd(1999, 0, 1).is_err());
        assert!(Date::from_ymd(1999, 4, 31).is_err());
        assert!(Date::parse("not a date").is_err());
        assert!(Date::parse("1999/7").is_err());
    }

    #[test]
    fn display_is_iso() {
        assert_eq!(
            Date::from_ymd(1999, 7, 3).unwrap().to_string(),
            "1999-07-03"
        );
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1999));
    }

    #[test]
    fn ordering_follows_time() {
        let a = Date::parse("1999-07-03").unwrap();
        let b = Date::parse("1999-07-05").unwrap();
        assert!(a < b);
        assert_eq!(b.days() - a.days(), 2);
    }

    proptest! {
        #[test]
        fn civil_roundtrip(days in -1_000_000i64..1_000_000i64) {
            let d = Date::from_days(days);
            let (y, m, dd) = d.ymd();
            let back = Date::from_ymd(y, m, dd).unwrap();
            prop_assert_eq!(back.days(), days);
        }

        #[test]
        fn ymd_roundtrip(y in 1i32..4000, m in 1u32..=12, d in 1u32..=28) {
            let date = Date::from_ymd(y, m, d).unwrap();
            prop_assert_eq!(date.ymd(), (y, m, d));
        }

        #[test]
        fn successive_days_are_adjacent(days in -500_000i64..500_000i64) {
            let d0 = Date::from_days(days);
            let d1 = Date::from_days(days + 1);
            prop_assert!(d0 < d1);
            let (y0, m0, dd0) = d0.ymd();
            let (y1, m1, dd1) = d1.ymd();
            // Either same month with day+1, or the first of a following month.
            if m0 == m1 && y0 == y1 {
                prop_assert_eq!(dd1, dd0 + 1);
            } else {
                prop_assert_eq!(dd1, 1);
                prop_assert_eq!(dd0, days_in_month(y0, m0));
            }
        }
    }
}
