//! Relation schemas and column resolution.
//!
//! A [`Schema`] is an ordered list of [`Column`]s, each with a name, a
//! [`DataType`], nullability and an optional table qualifier. Column lookup
//! implements SQL name resolution: an unqualified name matches any column
//! with that name (ambiguity is an error), a qualified name `t.c` matches
//! only columns whose qualifier is `t`.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::fmt;

/// A column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether NULLs are admitted.
    pub nullable: bool,
    /// Table alias or name this column is visible under, if any.
    pub qualifier: Option<String>,
}

impl Column {
    /// A nullable column without a qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: true,
            qualifier: None,
        }
    }

    /// Mark the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Attach a table qualifier.
    pub fn qualified(mut self, q: impl Into<String>) -> Self {
        self.qualifier = Some(q.into().to_ascii_lowercase());
        self
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether `value` may be stored in this column (type + nullability).
    pub fn check_value(&self, value: &Value) -> Result<()> {
        match value {
            Value::Null if self.nullable => Ok(()),
            Value::Null => Err(Error::Type(format!("column '{}' is NOT NULL", self.name))),
            v => {
                let vt = v.data_type().expect("non-null value has a type");
                if self.data_type.accepts(vt) {
                    Ok(())
                } else {
                    Err(Error::Type(format!(
                        "column '{}' has type {} but value has type {}",
                        self.name,
                        self.data_type.sql_name(),
                        vt.sql_name()
                    )))
                }
            }
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// An empty schema.
    pub fn empty() -> Self {
        Schema { columns: vec![] }
    }

    /// Build a schema from columns. Duplicate fully-qualified names are
    /// rejected (two `a.x` columns), but the same bare name under different
    /// qualifiers is fine (`a.x`, `b.x` after a join).
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            for d in &columns[..i] {
                if c.name == d.name && c.qualifier == d.qualifier {
                    return Err(Error::Catalog(format!(
                        "duplicate column '{}'",
                        c.qualified_name()
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// Matching is case-insensitive. Unqualified names that match several
    /// columns are ambiguous; unknown names are a plan error.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(str::to_ascii_lowercase);
        let mut hit = None;
        for (i, c) in self.columns.iter().enumerate() {
            let name_matches = c.name == name;
            let qual_matches = match (&qualifier, &c.qualifier) {
                (None, _) => true,
                (Some(q), Some(cq)) => q == cq,
                (Some(_), None) => false,
            };
            if name_matches && qual_matches {
                if hit.is_some() {
                    return Err(Error::Plan(format!("ambiguous column reference '{name}'")));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            let shown = match &qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            Error::Plan(format!("unknown column '{shown}'"))
        })
    }

    /// Re-qualify every column under a new table alias (used by `FROM t AS a`).
    pub fn with_qualifier(&self, q: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.qualifier = Some(q.to_ascii_lowercase());
                    c
                })
                .collect(),
        }
    }

    /// Drop all qualifiers (used when a derived table's output becomes a
    /// fresh relation).
    pub fn without_qualifiers(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.qualifier = None;
                    c
                })
                .collect(),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.qualified_name(), c.data_type.sql_name())?;
            if !c.nullable {
                f.write_str(" NOT NULL")?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int)
                .not_null()
                .qualified("cars"),
            Column::new("make", DataType::Str).qualified("cars"),
            Column::new("price", DataType::Float).qualified("cars"),
        ])
        .unwrap()
    }

    #[test]
    fn resolve_unqualified_and_qualified() {
        let s = sample();
        assert_eq!(s.resolve(None, "make").unwrap(), 1);
        assert_eq!(s.resolve(Some("cars"), "price").unwrap(), 2);
        assert_eq!(s.resolve(Some("CARS"), "PRICE").unwrap(), 2);
    }

    #[test]
    fn unknown_and_wrong_qualifier() {
        let s = sample();
        assert!(s.resolve(None, "nope").is_err());
        assert!(s.resolve(Some("other"), "make").is_err());
    }

    #[test]
    fn ambiguous_reference_after_join() {
        let a = sample();
        let b = sample().with_qualifier("b");
        let j = a.join(&b);
        assert!(j.resolve(None, "make").is_err());
        assert_eq!(j.resolve(Some("b"), "make").unwrap(), 4);
        assert_eq!(j.resolve(Some("cars"), "make").unwrap(), 1);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("x", DataType::Int),
        ]);
        assert!(r.is_err());
        // Same name, different qualifier is fine.
        let ok = Schema::new(vec![
            Column::new("x", DataType::Int).qualified("a"),
            Column::new("x", DataType::Int).qualified("b"),
        ]);
        assert!(ok.is_ok());
    }

    #[test]
    fn check_value_enforces_type_and_nullability() {
        let c = Column::new("n", DataType::Int).not_null();
        assert!(c.check_value(&Value::Int(1)).is_ok());
        assert!(c.check_value(&Value::Null).is_err());
        assert!(c.check_value(&Value::str("x")).is_err());
        let f = Column::new("f", DataType::Float);
        // INT stores into FLOAT.
        assert!(f.check_value(&Value::Int(1)).is_ok());
        assert!(f.check_value(&Value::Null).is_ok());
    }

    #[test]
    fn names_are_lowercased() {
        let c = Column::new("Price", DataType::Int).qualified("Cars");
        assert_eq!(c.name, "price");
        assert_eq!(c.qualifier.as_deref(), Some("cars"));
        assert_eq!(c.qualified_name(), "cars.price");
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::new(vec![Column::new("id", DataType::Int).not_null()]).unwrap();
        assert_eq!(s.to_string(), "(id INTEGER NOT NULL)");
    }
}
