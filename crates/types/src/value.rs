//! SQL values and data types with SQL92 comparison semantics.
//!
//! [`Value`] is the runtime representation used by the storage layer, the
//! expression evaluator and the preference model. Comparisons follow SQL's
//! three-valued logic (`NULL`-propagating [`Value::sql_eq`] /
//! [`Value::sql_cmp`]) while [`Value::total_cmp`] provides the total order
//! used by `ORDER BY` and B-tree indexes (NULLs sort first, mixed numerics
//! compare numerically).

use crate::date::Date;
use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The SQL data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean truth values.
    Bool,
    /// 64-bit signed integers (`INTEGER`).
    Int,
    /// 64-bit IEEE-754 floats (`FLOAT` / `DOUBLE` / `NUMERIC`).
    Float,
    /// UTF-8 strings (`VARCHAR` / `TEXT`).
    Str,
    /// Calendar dates (`DATE`).
    Date,
}

impl DataType {
    /// SQL spelling of the type, used by `EXPLAIN` and error messages.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
        }
    }

    /// True for INT and FLOAT.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether a value of type `other` can be stored in a column of `self`
    /// (identity, or INT into FLOAT).
    pub fn accepts(self, other: DataType) -> bool {
        self == other || (self == DataType::Float && other == DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (unknown).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's data type, or `None` for NULL (which is untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Numeric view of the value: INT and FLOAT yield their magnitude,
    /// DATE yields its day count (so `AROUND '1999/7/3'` distances work),
    /// everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(d.days() as f64),
            _ => None,
        }
    }

    /// Integer view (INT only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view (BOOL only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view (STR only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering comparison under three-valued logic.
    ///
    /// Returns `None` if either side is NULL or the types are incomparable
    /// (the engine's type checker rejects incomparable comparisons earlier;
    /// `None` here is a defensive fallback treated as UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                // Mixed INT/FLOAT compare numerically; dates only compare
                // with dates (handled above), not with bare numbers.
                (Some(x), Some(y))
                    if a.data_type() != Some(DataType::Date)
                        && b.data_type() != Some(DataType::Date) =>
                {
                    x.partial_cmp(&y)
                }
                _ => None,
            },
        }
    }

    /// Total order for sorting and index keys: NULL first, then by type
    /// group; numerics (INT/FLOAT) compare numerically with NaN last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for grouping/keys: NULLs group together, INT 1 == FLOAT 1.0.
    pub fn key_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// SQL `+`.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// SQL `-`. Also supports DATE − DATE (day difference, INT) and
    /// DATE − INT (date shifted back).
    pub fn sub(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Date(a), Value::Date(b)) => Ok(Value::Int(a.days() - b.days())),
            (Value::Date(a), Value::Int(b)) => Ok(Value::Date(Date::from_days(a.days() - b))),
            _ => self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b),
        }
    }

    /// SQL `*`.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// SQL `/`. Integer division by zero is an execution error; float
    /// division follows IEEE-754.
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(_), Value::Int(0)) => Err(Error::Exec("integer division by zero".into())),
            _ => self.numeric_binop(other, "/", |a, b| a.checked_div(b), |a, b| a / b),
        }
    }

    /// SQL unary minus.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(Error::Type(format!(
                "cannot negate {} value",
                v.type_name()
            ))),
        }
    }

    /// SQL `ABS`.
    pub fn abs(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(Error::Type(format!(
                "ABS expects a numeric argument, got {}",
                v.type_name()
            ))),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| Error::Exec(format!("integer overflow in {a} {op} {b}"))),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y))
                    if a.data_type().is_some_and(DataType::is_numeric)
                        && b.data_type().is_some_and(DataType::is_numeric) =>
                {
                    Ok(Value::Float(float_op(x, y)))
                }
                _ => Err(Error::Type(format!(
                    "operator {op} expects numeric operands, got {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            },
        }
    }

    /// Human-readable type name for diagnostics (NULL included).
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            None => "NULL",
            Some(t) => t.sql_name(),
        }
    }

    /// Coerce the value to `target` where SQL allows it implicitly
    /// (INT → FLOAT, string → DATE for date literals). Returns a type
    /// error otherwise.
    pub fn coerce_to(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Str(s), DataType::Date) => Ok(Value::Date(Date::parse(s)?)),
            (v, t) => Err(Error::Type(format!(
                "cannot coerce {} to {}",
                v.type_name(),
                t.sql_name()
            ))),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // INT and FLOAT that compare key-equal must hash equally: hash
            // integral floats as their integer value.
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    state.write_u8(2);
                    (*f as i64).hash(state);
                } else {
                    state.write_u8(3);
                    f.to_bits().hash(state);
                }
            }
            Value::Date(d) => {
                state.write_u8(4);
                d.days().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_types_yield_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
        let d = Value::Date(Date::from_days(10));
        assert_eq!(d.sql_cmp(&Value::Int(10)), None);
    }

    #[test]
    fn date_comparison_and_arithmetic() {
        let a = Value::Date(Date::parse("1999-07-03").unwrap());
        let b = Value::Date(Date::parse("1999-07-05").unwrap());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.sub(&a).unwrap(), Value::Int(2));
        assert_eq!(b.sub(&Value::Int(2)).unwrap(), a);
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
        assert_eq!(Value::Null.abs().unwrap(), Value::Null);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn division_by_zero() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        // Float division by zero is IEEE infinity, not an error.
        let v = Value::Float(1.0).div(&Value::Float(0.0)).unwrap();
        assert_eq!(v, Value::Float(f64::INFINITY));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn strings_do_not_add() {
        assert!(Value::str("a").add(&Value::str("b")).is_err());
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vs = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn key_eq_unifies_int_and_float() {
        assert!(Value::Int(5).key_eq(&Value::Float(5.0)));
        assert!(!Value::Int(5).key_eq(&Value::Float(5.5)));
        assert!(Value::Null.key_eq(&Value::Null));
    }

    #[test]
    fn hash_consistent_with_key_eq() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(5)), h(&Value::Float(5.0)));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::str("x").coerce_to(DataType::Int).is_err());
        let d = Value::str("1999/7/3").coerce_to(DataType::Date).unwrap();
        assert_eq!(d, Value::Date(Date::parse("1999-07-03").unwrap()));
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-z]{0,8}".prop_map(Value::Str),
            (-100_000i64..100_000).prop_map(|d| Value::Date(Date::from_days(d))),
        ]
    }

    proptest! {
        #[test]
        fn total_cmp_is_a_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
            // Antisymmetry.
            prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
            // Transitivity of <=.
            if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
                prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
            }
            // Reflexivity.
            prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        }

        #[test]
        fn sql_cmp_agrees_with_total_cmp_on_comparables(a in arb_value(), b in arb_value()) {
            if let Some(ord) = a.sql_cmp(&b) {
                prop_assert_eq!(ord, a.total_cmp(&b));
            }
        }

        #[test]
        fn key_eq_implies_equal_hash(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            fn h(v: &Value) -> u64 {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            }
            if a.key_eq(&b) {
                prop_assert_eq!(h(&a), h(&b));
            }
        }

        #[test]
        fn add_commutes_on_ints(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let x = Value::Int(a).add(&Value::Int(b)).unwrap();
            let y = Value::Int(b).add(&Value::Int(a)).unwrap();
            prop_assert_eq!(x, y);
        }
    }
}
