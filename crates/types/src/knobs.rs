//! Resource-knob parsing shared by every layer of the stack.
//!
//! The shell's `\window`/`\pool` commands, the `PREFSQL_WINDOW` /
//! `PREFSQL_POOL` environment ceilings, and the storage layer's pool
//! sizing all speak the same dialect: a byte count with an optional
//! binary suffix, clamped to a per-knob minimum. The helpers live here —
//! below both `prefsql-storage` and `prefsql-engine` in the crate
//! graph — so the buffer pool can size itself with the exact parser the
//! session layer exposes (the `prefsql` facade re-exports them from its
//! `knobs` module, together with the env-resolution wrappers).
//!
//! The shared semantics, pinned by [`ceiling_from_value`]: **a set env
//! var is a ceiling**. A parseable value is clamped to at least the
//! knob's minimum; zero or garbage caps *at* the minimum — a
//! set-but-invalid value must never escalate past the most conservative
//! setting (serial execution, the smallest window, the smallest pool).

/// The smallest admissible external-memory window budget (4 KiB).
/// Budgets below this thrash: the window always admits at least one
/// tuple, but a sub-page budget spills nearly every candidate every
/// pass. Both the env ceiling and the shell's `\window` clamp up to it.
pub const MIN_WINDOW_BYTES: usize = 4096;

/// The smallest admissible buffer-pool size: four pages (16 KiB). A
/// smaller pool cannot hold a scan's current page plus an insert's tail
/// page plus an index build's probe without evicting its own working
/// set every call. `\pool` and `PREFSQL_POOL` clamp up to it.
pub const MIN_POOL_BYTES: usize = 16 * 1024;

/// The default buffer-pool size when `PREFSQL_POOL` is unset: 1 MiB
/// (256 pages) — enough that small-table workloads never evict, small
/// enough that eviction is easy to provoke deliberately.
pub const DEFAULT_POOL_BYTES: usize = 1024 * 1024;

/// Resolve a *set* `PREFSQL_*` ceiling value: parse it with `parse` and
/// clamp to at least `min`; zero or garbage (unparseable, overflowing)
/// caps at `min`. Callers handle the unset case themselves — the knobs
/// fall back differently (host width vs unbounded vs a fixed default).
pub fn ceiling_from_value<T: Ord>(raw: &str, parse: impl FnOnce(&str) -> Option<T>, min: T) -> T {
    match parse(raw.trim()) {
        Some(v) if v > min => v,
        _ => min,
    }
}

/// Parse a byte size with an optional binary suffix: `65536`, `64k`,
/// `1M` (case-insensitive; `k` = KiB, `m` = MiB). `None` on garbage or
/// overflow.
pub fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, factor) = match s.char_indices().next_back()? {
        (i, 'k') | (i, 'K') => (&s[..i], 1024usize),
        (i, 'm') | (i, 'M') => (&s[..i], 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok()?.checked_mul(factor)
}

/// Render a byte count the way the shell and EXPLAIN display it:
/// `512 B`, `64 KiB`, `1.5 MiB`.
pub fn fmt_bytes(n: u64) -> String {
    if n < 1024 {
        format!("{n} B")
    } else if n < 1024 * 1024 {
        let kib = n as f64 / 1024.0;
        if kib.fract() == 0.0 {
            format!("{kib:.0} KiB")
        } else {
            format!("{kib:.1} KiB")
        }
    } else {
        let mib = n as f64 / (1024.0 * 1024.0);
        if mib.fract() == 0.0 {
            format!("{mib:.0} MiB")
        } else {
            format!("{mib:.1} MiB")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("4K"), Some(4096));
        assert_eq!(parse_size("2m"), Some(2 << 20));
        assert_eq!(parse_size(" 8 k "), Some(8192));
        assert_eq!(parse_size("4g"), None);
        assert_eq!(parse_size("-1"), None);
    }

    #[test]
    fn bare_suffixes_are_garbage() {
        // A suffix with no digits must not parse as zero or one unit.
        assert_eq!(parse_size("k"), None);
        assert_eq!(parse_size("K"), None);
        assert_eq!(parse_size("m"), None);
        assert_eq!(parse_size(" M "), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn overflow_is_garbage_not_a_wrapped_value() {
        // Digits past u64/usize range fail in `parse`...
        assert_eq!(parse_size("99999999999999999999"), None);
        assert_eq!(parse_size("99999999999999999999k"), None);
        // ...and digits that parse but overflow the suffix multiply fail
        // in `checked_mul`, never wrapping to a tiny budget.
        assert_eq!(parse_size("18446744073709551615k"), None);
        assert_eq!(parse_size("999999999999999999m"), None);
    }

    #[test]
    fn ceiling_clamps_garbage_to_the_minimum() {
        let of = |raw: &str| ceiling_from_value(raw, parse_size, MIN_POOL_BYTES);
        assert_eq!(of("64k"), 65536);
        assert_eq!(of("0"), MIN_POOL_BYTES);
        assert_eq!(of("100"), MIN_POOL_BYTES);
        assert_eq!(of("lots"), MIN_POOL_BYTES);
        assert_eq!(of("99999999999999999999k"), MIN_POOL_BYTES);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KiB");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(1 << 20), "1 MiB");
        assert_eq!(fmt_bytes(3 << 19), "1.5 MiB");
    }
}
