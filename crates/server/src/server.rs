//! The thread-per-connection TCP server.
//!
//! Every accepted connection gets its own [`Session`] borrowing the
//! shared [`EngineCore`], so queries run under concurrent read locks
//! and DML serializes on the write lock — the same statement-level
//! isolation the embedded API provides, now across sockets.

use crate::protocol;
use prefsql::Session;
use prefsql_engine::EngineCore;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Default cap on concurrent connections (`--max-connections`):
/// generous for a thread-per-connection design, but finite, so a
/// misbehaving client pool degrades into polite refusals instead of
/// unbounded thread growth.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// A bound-but-not-yet-running server: the listener plus the shared
/// engine core every connection's session will borrow.
pub struct Server {
    listener: TcpListener,
    core: Arc<EngineCore>,
    shutdown: Arc<AtomicBool>,
    max_connections: usize,
    /// `--slow-query-ms`: statements at or over this many milliseconds
    /// are logged to stderr with their analyzed plan. `None` = off.
    slow_query_ms: Option<u64>,
}

/// Decrements the live-connection gauge when a connection thread exits,
/// however it exits (EOF, protocol error, or unwinding panic).
struct ConnectionGuard(Arc<AtomicUsize>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]): exposes the bound address and a [`stop`]
/// switch.
///
/// [`stop`]: ServerHandle::stop
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server accepts connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown, wake the accept loop, and join the server
    /// thread. Connections still open finish their current request
    /// loop; callers should disconnect clients first.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Server {
    /// Bind a listener on `addr` (use port 0 to let the OS pick) over
    /// the given shared core.
    pub fn bind(addr: impl ToSocketAddrs, core: Arc<EngineCore>) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            core,
            shutdown: Arc::new(AtomicBool::new(false)),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            slow_query_ms: None,
        })
    }

    /// Cap the number of concurrently served connections (clamped to at
    /// least 1). Connections accepted at capacity are refused with a
    /// single `ERROR:` line and closed — backpressure the line client
    /// surfaces as a failed connect instead of a hang.
    pub fn with_max_connections(mut self, max: usize) -> Server {
        self.max_connections = max.max(1);
        self
    }

    /// Log every statement taking at least `ms` milliseconds to stderr,
    /// together with its analyzed execution plan (sessions run with
    /// always-on profiling when this is set). `None` disables the log.
    pub fn with_slow_query_ms(mut self, ms: Option<u64>) -> Server {
        self.slow_query_ms = ms;
        self
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on the current thread: one spawned thread
    /// per accepted connection, until [`ServerHandle::stop`] (or a
    /// fatal listener error). Finished connection threads are reaped
    /// each iteration.
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let active = Arc::new(AtomicUsize::new(0));
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if self.shutdown.load(Ordering::SeqCst) => break,
                Err(e) => return Err(e),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // At capacity the connection is refused, not queued: one
            // terminator line tells the client why, then the socket
            // closes and the accept loop is immediately free again.
            if active.load(Ordering::SeqCst) >= self.max_connections {
                let mut refused = BufWriter::new(stream);
                let _ = writeln!(
                    refused,
                    "ERROR: server at capacity ({} connections); try again later",
                    self.max_connections
                );
                let _ = refused.flush();
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let guard = ConnectionGuard(Arc::clone(&active));
            let core = Arc::clone(&self.core);
            let slow_query_ms = self.slow_query_ms;
            workers.push(thread::spawn(move || {
                let _guard = guard;
                // Connection I/O errors just end that connection.
                let _ = serve_connection(stream, core, slow_query_ms);
            }));
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Run the accept loop on a background thread, returning a handle
    /// for the bound address and shutdown.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            thread,
        })
    }
}

/// Serve one connection: greet, then answer request lines until `\q`
/// or EOF. Each connection owns a private [`Session`] over the shared
/// core.
fn serve_connection(
    stream: TcpStream,
    core: Arc<EngineCore>,
    slow_query_ms: Option<u64>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{}", protocol::GREETING)?;
    writer.flush()?;

    let mut session = Session::with_core(Arc::clone(&core));
    // The slow-query log needs every statement's analyzed plan, so
    // threshold-bearing servers run their sessions with always-on
    // profiling.
    if slow_query_ms.is_some() {
        session.set_profile_all(true);
    }
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client went away.
        }
        let request = line.trim();
        let mut out: Vec<String> = Vec::new();
        if let Some(meta) = request.strip_prefix('\\') {
            let mut parts = meta.splitn(2, char::is_whitespace);
            let head = format!("\\{}", parts.next().unwrap_or(""));
            let arg = parts.next().map(str::trim).unwrap_or("");
            if head == "\\q" || head == "\\quit" {
                writeln!(writer, "{}", protocol::BYE)?;
                writer.flush()?;
                return Ok(());
            }
            match session.command(&head, arg) {
                Some(text) => protocol::render_text(&text, &mut out),
                None => out.push(format!(
                    "ERROR: unknown command '{}' (\\mode \\algo \\threads \\window \\metrics \\rewrite \\d \\q)",
                    protocol::escape(&head)
                )),
            }
        } else if request == protocol::METRICS_VERB {
            // Engine-wide counters as machine-parseable key/value pairs:
            // one `| key<TAB>value` payload line each, then `OK`.
            for (k, v) in core.metrics_report() {
                out.push(format!(
                    "{}{}\t{}",
                    protocol::PAYLOAD_PREFIX,
                    protocol::escape(&k),
                    protocol::escape(&v)
                ));
            }
            out.push("OK".into());
        } else {
            let sql = request.trim_end_matches(';').trim();
            if sql.is_empty() {
                out.push("OK".into());
            } else {
                // A panicking statement must cost at most this statement
                // (and, if it held the write lock, poison the catalog into
                // Error::Concurrency for everyone) — never the whole
                // server or even this connection. No legitimate SQL input
                // panics, so the regression suite injects one through
                // PREFSQL_PANIC_SQL: a request matching the variable's
                // value panics mid-execution instead of executing.
                let started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if std::env::var("PREFSQL_PANIC_SQL").is_ok_and(|p| p == sql) {
                        panic!("injected test panic");
                    }
                    session.execute(sql)
                }));
                let elapsed = started.elapsed();
                match result {
                    Ok(result) => protocol::render_result(&result, &mut out),
                    Err(_) => out.push("ERROR: exec error: statement panicked".into()),
                }
                if let Some(threshold) = slow_query_ms {
                    // Drain the analyzed plan on every statement so a
                    // fast statement's plan can never masquerade as a
                    // later slow one's.
                    let analyzed = session.take_analyzed();
                    if elapsed.as_millis() as u64 >= threshold {
                        core.metrics().note_slow_statement();
                        eprintln!(
                            "[slow query] {:.3} ms: {}",
                            elapsed.as_secs_f64() * 1e3,
                            sql
                        );
                        if let Some(plan) = analyzed {
                            for l in plan.lines() {
                                eprintln!("  {l}");
                            }
                        }
                    }
                }
            }
        }
        for l in &out {
            writeln!(writer, "{l}")?;
        }
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn serves_a_basic_session() {
        let server = Server::bind("127.0.0.1:0", EngineCore::shared()).unwrap();
        let handle = server.spawn().unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();

        let r = c.request("CREATE TABLE t (x INTEGER)").unwrap();
        assert!(r.is_ok(), "{r:?}");
        let r = c.request("INSERT INTO t VALUES (3), (1), (2);").unwrap();
        assert_eq!(r.status, "OK INSERT 3");
        let r = c.request("SELECT x FROM t PREFERRING LOWEST(x)").unwrap();
        assert_eq!(r.header.as_deref(), Some(&["x".to_string()][..]));
        assert_eq!(r.rows(), vec![vec!["1".to_string()]]);
        assert_eq!(r.status, "OK 1 rows");

        // Errors keep the session usable.
        let r = c.request("SELECT nope FROM nothing").unwrap();
        assert!(r.is_err(), "{r:?}");
        let r = c.request("SELECT x FROM t ORDER BY x").unwrap();
        assert_eq!(r.rows().len(), 3);

        // Knobs speak the shared session command set.
        let r = c.request("\\threads 2").unwrap();
        assert_eq!(r.payload, vec!["threads: 2"]);
        let r = c.request("\\mode native").unwrap();
        assert_eq!(r.payload, vec!["mode: native (auto)"]);
        let r = c.request("\\nosuch").unwrap();
        assert!(r.is_err(), "{r:?}");

        c.quit().unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn metrics_verb_reports_engine_totals() {
        let server = Server::bind("127.0.0.1:0", EngineCore::shared()).unwrap();
        let handle = server.spawn().unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();

        c.request("CREATE TABLE t (x INTEGER, y INTEGER)").unwrap();
        c.request("INSERT INTO t VALUES (1, 2), (2, 1), (3, 3)")
            .unwrap();
        c.request("\\mode native").unwrap();
        let r = c
            .request("SELECT x FROM t PREFERRING LOWEST(x) AND LOWEST(y)")
            .unwrap();
        assert_eq!(r.rows().len(), 2);

        let r = c.request("METRICS").unwrap();
        assert_eq!(r.status, "OK");
        let kv: std::collections::HashMap<String, String> = r
            .rows()
            .into_iter()
            .map(|row| {
                assert_eq!(row.len(), 2, "every METRICS line is key\\tvalue: {row:?}");
                (row[0].clone(), row[1].clone())
            })
            .collect();
        // The registry saw every statement this connection ran (meta
        // commands are not statements).
        let statements: u64 = kv["statements.total"].parse().unwrap();
        assert!(statements >= 3, "{kv:?}");
        assert_eq!(kv["statements.errored"], "0");
        let returned: u64 = kv["rows.returned"].parse().unwrap();
        assert!(returned >= 2, "{kv:?}");
        assert_eq!(kv["rows.affected"], "3");
        // The native skyline charged its dominance comparisons.
        let dominance: u64 = kv["exec.dominance_tests"].parse().unwrap();
        assert!(dominance >= 1, "{kv:?}");
        // This connection's session is open right now.
        let open: u64 = kv["sessions.open"].parse().unwrap();
        assert!(open >= 1, "{kv:?}");

        // Another statement moves the totals — the registry is live.
        c.request("SELECT x FROM t ORDER BY x").unwrap();
        let r2 = c.request("METRICS").unwrap();
        let statements_after: u64 = r2
            .rows()
            .into_iter()
            .find(|row| row[0] == "statements.total")
            .map(|row| row[1].parse().unwrap())
            .unwrap();
        assert!(statements_after > statements, "{statements_after}");

        c.quit().unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn slow_query_threshold_counts_statements() {
        let server = Server::bind("127.0.0.1:0", EngineCore::shared())
            .unwrap()
            .with_slow_query_ms(Some(0)); // everything is "slow"
        let handle = server.spawn().unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();

        c.request("CREATE TABLE t (x INTEGER)").unwrap();
        c.request("INSERT INTO t VALUES (2), (1)").unwrap();
        let r = c.request("SELECT x FROM t ORDER BY x").unwrap();
        assert_eq!(r.rows().len(), 2);

        let r = c.request("METRICS").unwrap();
        let slow: u64 = r
            .rows()
            .into_iter()
            .find(|row| row[0] == "statements.slow")
            .map(|row| row[1].parse().unwrap())
            .unwrap();
        assert!(slow >= 3, "every statement crossed the 0 ms bar: {slow}");

        c.quit().unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn at_capacity_connections_are_refused_politely() {
        let server = Server::bind("127.0.0.1:0", EngineCore::shared())
            .unwrap()
            .with_max_connections(2);
        let handle = server.spawn().unwrap();
        let a = Client::connect(handle.addr()).unwrap();
        let b = Client::connect(handle.addr()).unwrap();

        // The third connection gets one ERROR line instead of the
        // greeting — the client surfaces it as a failed connect.
        let msg = match Client::connect(handle.addr()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("third connection must be refused"),
        };
        assert!(msg.contains("server at capacity (2 connections)"), "{msg}");

        // A slot frees as soon as a connection finishes.
        a.quit().unwrap();
        let c = (0..100)
            .find_map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Client::connect(handle.addr()).ok()
            })
            .expect("slot frees after quit");
        drop(c); // EOF teardown (no \q) must release the slot too
        let d = (0..100)
            .find_map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Client::connect(handle.addr()).ok()
            })
            .expect("slot frees after EOF");
        drop(d);
        b.quit().unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn sessions_are_isolated_but_share_the_catalog() {
        let server = Server::bind("127.0.0.1:0", EngineCore::shared()).unwrap();
        let handle = server.spawn().unwrap();
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();

        a.request("CREATE TABLE t (x INTEGER)").unwrap();
        a.request("INSERT INTO t VALUES (2), (1)").unwrap();
        // B sees A's data through the shared core...
        let r = b.request("SELECT x FROM t ORDER BY x").unwrap();
        assert_eq!(r.rows().len(), 2);
        // ...but knob state is per connection.
        a.request("\\threads 7").unwrap();
        let r = b.request("\\threads").unwrap();
        assert_ne!(r.payload, vec!["threads: 7"]);

        a.quit().unwrap();
        b.quit().unwrap();
        handle.stop().unwrap();
    }
}
