//! TCP front end for Preference SQL — the layer that turns the library
//! into the *service* the paper actually deployed (§3.1's middleware
//! fielding live portal traffic).
//!
//! ```text
//! prefsql-client ──TCP──►┌──────────────────┐
//! prefsql-client ──TCP──►│  prefsql-server  │  thread per connection
//!        ...             └────────┬─────────┘
//!                          Session per conn (knobs, rewriter, spill dir)
//!                                 │
//!                          EngineCore (shared catalog, RwLock)
//! ```
//!
//! Three pieces:
//!
//! * [`protocol`] — the line-oriented wire format: one request line in,
//!   a block of prefixed payload lines terminated by `OK …` /
//!   `ERROR: …` out.
//! * [`server`] — [`Server`]: a thread-per-connection
//!   `std::net::TcpListener` loop; every accepted connection gets its
//!   own [`prefsql::Session`] over the shared
//!   [`EngineCore`](prefsql_engine::EngineCore).
//! * [`client`] — [`Client`]: a small blocking client used by the
//!   tests, the bench harness and the `prefsql-client` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, Response};
pub use server::{Server, ServerHandle, DEFAULT_MAX_CONNECTIONS};
