//! A small blocking client for the wire protocol — used by the e2e
//! tests, the `concurrent_queries` bench and the `prefsql-client`
//! binary.

use crate::protocol;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One server response: optional column header, payload lines, and the
/// terminator line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Column names of a row result (unescaped), when present.
    pub header: Option<Vec<String>>,
    /// Payload lines with their `| ` prefix stripped, still escaped —
    /// rows stay one line each, so responses compare byte-for-byte.
    pub payload: Vec<String>,
    /// The terminator: `OK …`, `ERROR: …`, or `BYE`.
    pub status: String,
}

impl Response {
    /// True iff the terminator reports success.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }

    /// True iff the terminator reports an error.
    pub fn is_err(&self) -> bool {
        self.status.starts_with("ERROR:")
    }

    /// The error message, when [`Response::is_err`].
    pub fn error(&self) -> Option<String> {
        self.status.strip_prefix("ERROR: ").map(protocol::unescape)
    }

    /// Rows of a row result: payload lines split on tabs, cells
    /// unescaped.
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.payload
            .iter()
            .map(|l| l.split('\t').map(protocol::unescape).collect())
            .collect()
    }

    /// The full response re-joined, for byte-identical comparisons
    /// across connections.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        if let Some(h) = &self.header {
            out.push_str(protocol::HEADER_PREFIX);
            out.push_str(&h.join("\t"));
            out.push('\n');
        }
        for l in &self.payload {
            out.push_str(protocol::PAYLOAD_PREFIX);
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&self.status);
        out.push('\n');
        out
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect and consume the server greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        let greeting = client.read_trimmed_line()?;
        if greeting != protocol::GREETING {
            return Err(io::Error::other(format!(
                "unexpected greeting: {greeting:?}"
            )));
        }
        Ok(client)
    }

    /// Send one request line and collect the full response block.
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        if line.contains('\n') || line.contains('\r') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "requests are single lines",
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut header = None;
        let mut payload = Vec::new();
        loop {
            let l = self.read_trimmed_line()?;
            if protocol::is_terminator(&l) {
                return Ok(Response {
                    header,
                    payload,
                    status: l,
                });
            } else if let Some(h) = l.strip_prefix(protocol::HEADER_PREFIX) {
                header = Some(h.split('\t').map(protocol::unescape).collect());
            } else if let Some(p) = l.strip_prefix(protocol::PAYLOAD_PREFIX) {
                payload.push(p.to_string());
            } else {
                return Err(io::Error::other(format!("malformed protocol line: {l:?}")));
            }
        }
    }

    /// Send `\q`, expect `BYE`, and drop the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let r = self.request("\\q")?;
        if r.status != protocol::BYE {
            return Err(io::Error::other(format!(
                "expected BYE, got {:?}",
                r.status
            )));
        }
        Ok(())
    }

    fn read_trimmed_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
