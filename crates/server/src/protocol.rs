//! The wire protocol: line-oriented, human-readable, trivially
//! scriptable with `nc`.
//!
//! Requests are single lines (UTF-8, `\n`-terminated): one SQL
//! statement (a trailing `;` is tolerated), a `\`-meta-command
//! (`\mode`, `\algo`, `\threads`, `\window`, `\metrics`, `\rewrite`,
//! `\d`, `\q`), or the bare verb `METRICS` (the engine-wide metrics
//! registry as machine-parseable `key<TAB>value` payload lines, one
//! counter per line, terminated by `OK`).
//!
//! Every response is zero or more *payload* lines followed by exactly
//! one *terminator* line:
//!
//! | line | meaning |
//! |---|---|
//! | `# a<TAB>b` | column header of a row result |
//! | `\| 1<TAB>x` | one row, cells tab-separated and escaped |
//! | `\| text` | one line of message/EXPLAIN/meta-command output |
//! | `\| key<TAB>value` | one counter of a `METRICS` reply |
//! | `OK <n> rows` | row-result terminator |
//! | `OK INSERT <n>` | DML terminator |
//! | `OK` | message/meta/`METRICS` terminator |
//! | `ERROR: <msg>` | failure terminator (session stays usable) |
//! | `BYE` | reply to `\q`; the server closes the connection |
//!
//! On connect the server greets with [`GREETING`]. Cell and message
//! text is escaped so payload is always exactly one line per row
//! (`\` → `\\`, tab → `\t`, newline → `\n`, CR → `\r`); payload lines
//! always start with `# ` or `| `, so the terminator is unambiguous
//! even when a cell's text itself starts with `OK`.

use prefsql::{QueryResult, ResultSet};
use prefsql_types::Error;

/// The banner the server sends on accept (protocol version 1).
pub const GREETING: &str = "PREFSQL 1 ready";

/// Request verb returning the engine-wide metrics registry as
/// `key<TAB>value` payload lines.
pub const METRICS_VERB: &str = "METRICS";

/// Prefix of a column-header payload line.
pub const HEADER_PREFIX: &str = "# ";

/// Prefix of a row/message payload line.
pub const PAYLOAD_PREFIX: &str = "| ";

/// Terminator acknowledging `\q`.
pub const BYE: &str = "BYE";

/// Escape one cell or message line so it never spans or breaks a
/// protocol line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Unknown escapes keep the backslash verbatim.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Render a row result as protocol lines: header, rows, `OK <n> rows`.
pub fn render_rows(rs: &ResultSet, out: &mut Vec<String>) {
    let header: Vec<String> = rs.column_names().iter().map(|n| escape(n)).collect();
    out.push(format!("{HEADER_PREFIX}{}", header.join("\t")));
    for row in rs.rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| escape(&v.to_string()))
            .collect();
        out.push(format!("{PAYLOAD_PREFIX}{}", cells.join("\t")));
    }
    out.push(format!("OK {} rows", rs.len()));
}

/// Render multi-line message text (EXPLAIN output, meta-command
/// acknowledgements) as payload lines plus a bare `OK`.
pub fn render_text(text: &str, out: &mut Vec<String>) {
    for line in text.lines() {
        out.push(format!("{PAYLOAD_PREFIX}{}", escape(line)));
    }
    out.push("OK".into());
}

/// Render one statement outcome as protocol lines.
pub fn render_result(result: &Result<QueryResult, Error>, out: &mut Vec<String>) {
    match result {
        Ok(QueryResult::Rows(rs)) => render_rows(rs, out),
        Ok(QueryResult::Count(n)) => out.push(format!("OK INSERT {n}")),
        Ok(QueryResult::Message(m)) => render_text(m, out),
        Ok(QueryResult::Explain(text)) => render_text(text, out),
        Err(e) => out.push(format!("ERROR: {}", escape(&e.to_string()))),
    }
}

/// True iff `line` terminates a response block.
pub fn is_terminator(line: &str) -> bool {
    line == BYE || line.starts_with("OK") || line.starts_with("ERROR:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "a\tb", "line1\nline2", "back\\slash", "cr\rlf\n\t"] {
            let e = escape(s);
            assert!(!e.contains('\n'), "{e}");
            assert!(!e.contains('\t'), "{e}");
            assert_eq!(unescape(&e), s);
        }
    }

    #[test]
    fn terminators_are_unambiguous() {
        assert!(is_terminator("OK 3 rows"));
        assert!(is_terminator("OK"));
        assert!(is_terminator("ERROR: parse error: nope"));
        assert!(is_terminator(BYE));
        // A cell whose text starts with OK still ships as payload.
        assert!(!is_terminator("| OK 3 rows"));
        assert!(!is_terminator("# OK"));
    }

    #[test]
    fn error_rendering_is_single_line() {
        let mut out = Vec::new();
        render_result(&Err(Error::Parse("bad\nnews".into())), &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].starts_with("ERROR: parse error: bad\\nnews"),
            "{}",
            out[0]
        );
    }
}
