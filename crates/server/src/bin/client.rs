//! `prefsql-client` — a scriptable line client for `prefsql-server`.
//!
//! ```sh
//! prefsql-client [ADDR] < session.sql    # default 127.0.0.1:5433
//! ```
//!
//! Reads request lines from stdin (statements or `\`-commands), prints
//! each response's payload and terminator to stdout. Exits non-zero if
//! any request failed, so CI smoke scripts can assert success.

use prefsql_server::Client;
use std::io::BufRead;

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(a) if a == "--help" || a == "-h" => {
            eprintln!("usage: prefsql-client [ADDR]   (default {DEFAULT_ADDR})");
            return;
        }
        Some(a) => a,
        None => DEFAULT_ADDR.to_string(),
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("prefsql-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    let mut failures = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("prefsql-client: stdin: {e}");
                std::process::exit(1);
            }
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request == "\\q" || request == "\\quit" {
            break;
        }
        match client.request(request) {
            Ok(r) => {
                print!("{}", r.transcript());
                if r.is_err() {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("prefsql-client: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = client.quit() {
        eprintln!("prefsql-client: quit: {e}");
        std::process::exit(1);
    }
    if failures > 0 {
        eprintln!("prefsql-client: {failures} request(s) failed");
        std::process::exit(2);
    }
}
