//! `prefsql-server` — serve one shared Preference SQL catalog over TCP.
//!
//! ```sh
//! prefsql-server [ADDR] [--max-connections N] [--slow-query-ms N]
//! # default 127.0.0.1:5433
//! ```
//!
//! Thread-per-connection; every connection gets its own session (mode,
//! `\algo`, `\threads`, `\window`, spill dir) over the shared catalog.
//! Connections beyond `--max-connections` are refused with one `ERROR:`
//! line instead of queuing. With `--slow-query-ms N`, any statement
//! taking at least N milliseconds is logged to stderr with its analyzed
//! execution plan. See `prefsql_server::protocol` for the wire format;
//! `prefsql-client` is the matching line client.

use prefsql_engine::EngineCore;
use prefsql_server::{Server, DEFAULT_MAX_CONNECTIONS};

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

fn usage() -> ! {
    eprintln!(
        "usage: prefsql-server [ADDR] [--max-connections N] [--slow-query-ms N]\n\
         \x20      (default {DEFAULT_ADDR}, {DEFAULT_MAX_CONNECTIONS} connections)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut max_connections = DEFAULT_MAX_CONNECTIONS;
    let mut slow_query_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: prefsql-server [ADDR] [--max-connections N] [--slow-query-ms N]   \
                     (default {DEFAULT_ADDR}, {DEFAULT_MAX_CONNECTIONS} connections)"
                );
                return;
            }
            "--max-connections" => {
                max_connections = match args.next().as_deref().map(str::parse) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => usage(),
                };
            }
            "--slow-query-ms" => {
                slow_query_ms = match args.next().as_deref().map(str::parse) {
                    Some(Ok(n)) => Some(n),
                    _ => usage(),
                };
            }
            _ if addr.is_none() && !a.starts_with('-') => addr = Some(a),
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let server = match Server::bind(&addr, EngineCore::shared()) {
        Ok(s) => s
            .with_max_connections(max_connections)
            .with_slow_query_ms(slow_query_ms),
        Err(e) => {
            eprintln!("prefsql-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        // Scripts wait for this exact line before connecting.
        Ok(bound) => println!("prefsql-server listening on {bound}"),
        Err(e) => eprintln!("prefsql-server: local_addr: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("prefsql-server: accept loop failed: {e}");
        std::process::exit(1);
    }
}
