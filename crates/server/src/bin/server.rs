//! `prefsql-server` — serve one shared Preference SQL catalog over TCP.
//!
//! ```sh
//! prefsql-server [ADDR]        # default 127.0.0.1:5433
//! ```
//!
//! Thread-per-connection; every connection gets its own session (mode,
//! `\algo`, `\threads`, `\window`, spill dir) over the shared catalog.
//! See `prefsql_server::protocol` for the wire format; `prefsql-client`
//! is the matching line client.

use prefsql_engine::EngineCore;
use prefsql_server::Server;

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(a) if a == "--help" || a == "-h" => {
            eprintln!("usage: prefsql-server [ADDR]   (default {DEFAULT_ADDR})");
            return;
        }
        Some(a) => a,
        None => DEFAULT_ADDR.to_string(),
    };
    let server = match Server::bind(&addr, EngineCore::shared()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("prefsql-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        // Scripts wait for this exact line before connecting.
        Ok(bound) => println!("prefsql-server listening on {bound}"),
        Err(e) => eprintln!("prefsql-server: local_addr: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("prefsql-server: accept loop failed: {e}");
        std::process::exit(1);
    }
}
