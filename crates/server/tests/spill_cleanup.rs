//! Regression: a session's lazily created private spill directory is
//! removed at connection teardown even when a statement panicked on that
//! connection after spilling (the server's `catch_unwind` keeps the
//! connection and its session alive; `\q`/EOF drops the session, which
//! owns the `remove_dir_all`).
//!
//! This suite runs in its own test binary — and therefore its own
//! process — so the temp-dir diff below cannot race the spill dirs of
//! sessions created by other tests.

use prefsql_engine::EngineCore;
use prefsql_server::{Client, Server};
use std::collections::HashSet;
use std::path::PathBuf;

/// All of this process's session spill dirs currently in the system
/// temp dir (the dir name carries the pid).
fn session_spill_dirs() -> HashSet<PathBuf> {
    let prefix = format!("prefsql-session-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(&prefix))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn spill_dir_survives_statement_panic_but_not_connection_teardown() {
    // No legitimate SQL input panics; the server exposes this hook so
    // the recovery path can be driven through a real connection.
    const PANIC_SQL: &str = "SELECT panic_now FROM injected";
    std::env::set_var("PREFSQL_PANIC_SQL", PANIC_SQL);
    let before = session_spill_dirs();

    let server = Server::bind("127.0.0.1:0", EngineCore::shared()).unwrap();
    let handle = server.spawn().unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.request("CREATE TABLE pts (x INTEGER, y INTEGER)")
        .unwrap();
    // Anti-correlated points: the whole table is the skyline, so a
    // 4 KiB window must overflow and write spill runs.
    let values: Vec<String> = (0..400).map(|i| format!("({i}, {})", 400 - i)).collect();
    c.request(&format!("INSERT INTO pts VALUES {}", values.join(", ")))
        .unwrap();
    c.request("\\mode native").unwrap();
    c.request("\\window 4k").unwrap();
    let r = c
        .request("SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y)")
        .unwrap();
    assert_eq!(r.status, "OK 400 rows");

    // The spilling query created this connection's private dir.
    let created: Vec<PathBuf> = session_spill_dirs().difference(&before).cloned().collect();
    assert_eq!(
        created.len(),
        1,
        "exactly one session spill dir: {created:?}"
    );
    let dir = created[0].clone();
    assert!(dir.exists());

    // A panicking statement costs only itself: the panic is caught, the
    // session — and with it the spill dir — lives on.
    let r = c.request(PANIC_SQL).unwrap();
    assert_eq!(r.status, "ERROR: exec error: statement panicked");
    assert!(dir.exists(), "panic must not tear down the live session");
    let r = c.request("SELECT COUNT(*) FROM pts").unwrap();
    assert!(r.is_ok(), "connection stays usable after the panic: {r:?}");
    let r = c
        .request("SELECT x FROM pts PREFERRING LOWEST(x) AND LOWEST(y)")
        .unwrap();
    assert_eq!(r.status, "OK 400 rows", "spilling still works afterwards");

    // Connection teardown drops the session, which removes the dir.
    c.quit().unwrap();
    for _ in 0..200 {
        if !dir.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!dir.exists(), "session teardown removes the spill dir");
    handle.stop().unwrap();
}
