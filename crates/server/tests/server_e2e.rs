//! End-to-end acceptance for the TCP front end: one `prefsql-server`
//! instance serving 64 concurrent connections, every response
//! byte-identical to the single-session baseline captured before the
//! flood.

use prefsql::Session;
use prefsql_engine::EngineCore;
use prefsql_server::{Client, Server};
use std::sync::Arc;
use std::thread;

/// A shared core preloaded with the workload tables the query mix
/// touches.
fn loaded_core() -> Arc<EngineCore> {
    let core = EngineCore::shared();
    let mut session = Session::with_core(Arc::clone(&core));
    session
        .engine_mut()
        .catalog_mut()
        .create_table(prefsql_workload::cars::market(400, 7))
        .expect("fresh catalog");
    session
        .engine_mut()
        .catalog_mut()
        .create_table(prefsql_workload::hotels::table(150, 8))
        .expect("fresh catalog");
    core
}

/// The per-connection script: knob setup plus a mixed read workload
/// (rewrite + native, plain SQL + preference queries + EXPLAIN).
const SCRIPT: &[&str] = &[
    "\\threads 2",
    "SELECT COUNT(*) FROM car",
    "SELECT id, price, make FROM car WHERE price < 20000 ORDER BY price LIMIT 5",
    prefsql_workload::cars::OPEL_QUERY,
    "\\mode native",
    prefsql_workload::cars::OPEL_QUERY,
    prefsql_workload::hotels::NEG_QUERY,
    "EXPLAIN SELECT id FROM hotels PREFERRING LOWEST(price)",
    "\\mode rewrite",
    prefsql_workload::hotels::NEG_QUERY,
];

#[test]
fn sixty_four_connections_match_single_session_baseline() {
    let server = Server::bind("127.0.0.1:0", loaded_core()).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Single-session baseline: the transcript of one quiet connection.
    let baseline: Vec<String> = {
        let mut c = Client::connect(addr).unwrap();
        let out = SCRIPT
            .iter()
            .map(|q| c.request(q).unwrap().transcript())
            .collect();
        c.quit().unwrap();
        out
    };
    for (q, t) in SCRIPT.iter().zip(&baseline) {
        assert!(
            !t.starts_with("ERROR") && !t.contains("\nERROR"),
            "baseline failed on {q}: {t}"
        );
    }

    // 64 concurrent connections replay the script; every transcript
    // must be byte-identical to the baseline.
    let workers: Vec<_> = (0..64)
        .map(|conn| {
            let baseline = baseline.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for (i, q) in SCRIPT.iter().enumerate() {
                    let got = c.request(q).unwrap().transcript();
                    assert_eq!(
                        got, baseline[i],
                        "connection {conn} diverged from the baseline on: {q}"
                    );
                }
                c.quit().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("connection thread panicked");
    }

    handle.stop().unwrap();
}
