//! Offline stand-in for the `proptest` crate (1.x API line).
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim implements the subset of proptest the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`Just`],
//! [`prop_oneof!`], [`collection::vec`], string-pattern strategies,
//! [`any`], [`ProptestConfig`] and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — a failure panics immediately with the
//! generated inputs (printed via the assertion message). Generation is
//! deterministic per test-function name, so failures reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic random source used by all strategies; like real
/// proptest, a wrapper over a rand generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(state: u64) -> Self {
        TestRng {
            // Decorrelate from plain StdRng streams built on the same seed.
            inner: StdRng::seed_from_u64(state ^ 0xD1B5_4A32_D192_ED03),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }
}

/// Hash a test name into a stable seed (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function from RNG state to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive structures: `self` is the leaf strategy and
    /// `recurse` wraps an inner strategy into a branch strategy.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility but only `depth` is honoured.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            recurse: Rc::clone(&self.recurse),
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as usize + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies producing the same type.
/// Built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from pre-boxed options; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

// Range sampling delegates to the rand shim, which already widens to
// i128 to avoid overflow; empty ranges panic there.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- string pattern strategies -------------------------------------------

/// `&str` patterns act as simplified regex strategies, supporting the
/// forms the workspace uses: `[class]{m,n}` (char class with ranges)
/// and `\PC{m,n}` (arbitrary printable chars). Anything else falls
/// back to short alphanumeric strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, lo, hi) = parse_pattern(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| pool[rng.below(pool.len())]).collect()
    }
}

/// Decompose a simplified pattern into (char pool, min len, max len).
fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let (body, lo, hi) = match pat.rfind('{') {
        Some(brace) if pat.ends_with('}') => {
            let counts = &pat[brace + 1..pat.len() - 1];
            // Both `{m,n}` ranges and `{n}` exact counts.
            let parsed = match counts.split_once(',') {
                Some((a, b)) => a
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .zip(b.trim().parse::<usize>().ok()),
                None => counts.trim().parse::<usize>().ok().map(|n| (n, n)),
            };
            match parsed {
                Some((lo, hi)) if lo <= hi => (&pat[..brace], lo, hi),
                _ => (pat, 0, 16),
            }
        }
        _ => (pat, 0, 16),
    };
    let pool = if body.starts_with('[') && body.ends_with(']') {
        expand_class(&body[1..body.len() - 1])
    } else if body == "\\PC" {
        // Any printable char: ASCII plus a few multi-byte samples.
        let mut pool: Vec<char> = (' '..='~').collect();
        pool.extend(['ä', 'é', 'λ', '中', '🙂', '\u{2028}']);
        pool
    } else {
        ('a'..='z').chain('0'..='9').collect()
    };
    if pool.is_empty() {
        (vec!['a'], lo, hi)
    } else {
        (pool, lo, hi)
    }
}

/// Expand a character class body like `a-c` or `a-c ` into its chars.
fn expand_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo <= hi {
                pool.extend(lo..=hi);
            }
            i += 3;
        } else {
            pool.push(chars[i]);
            i += 1;
        }
    }
    pool
}

// ---- collection strategies -----------------------------------------------

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- any / Arbitrary -----------------------------------------------------

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy returned by [`any`] for primitive types.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mix of ordinary magnitudes and unit-interval values.
        let raw = rng.unit_f64();
        (raw - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

// ---- config + macros -----------------------------------------------------

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategy expressions yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert within a property; the shim panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that generates `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_vec() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0i64..10).generate(&mut rng);
            assert!((0..10).contains(&v));
            let xs = collection::vec(0i64..5, 2..4).generate(&mut rng);
            assert!(xs.len() == 2 || xs.len() == 3);
            let fixed = collection::vec(Just(7u8), 3).generate(&mut rng);
            assert_eq!(fixed, vec![7, 7, 7]);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let exact = "[a-z]{5}".generate(&mut rng);
            assert_eq!(exact.chars().count(), 5);
            assert!(exact.chars().all(|c| c.is_ascii_lowercase()));
            let t = "\\PC{0,120}".generate(&mut rng);
            assert!(t.chars().count() <= 120);
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!((0..4).contains(n), "leaf value out of strategy range");
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..4).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 12, 3, |inner| {
            prop_oneof![collection::vec(inner, 2..4).prop_map(Tree::Node)]
        });
        let mut rng = TestRng::seed_from_u64(3);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never produced a branch");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: patterns, tuples, flat_map, any.
        #[test]
        fn macro_smoke(
            x in 0i64..100,
            (a, b) in (0i64..10, 10i64..20),
            flag in any::<bool>(),
            v in prop_oneof![Just(1u8), Just(2u8)],
            len in (1usize..4).prop_flat_map(|n| collection::vec(0u32..9, n..n + 1))
        ) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(a < b);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(v == 1 || v == 2);
            prop_assert!(!len.is_empty() && len.len() < 4);
        }
    }
}
