//! Offline stand-in for the `rand` crate (0.8 API line).
//!
//! The build environment for this workspace has no access to crates.io,
//! so this shim provides exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is a
//! deterministic SplitMix64 — statistically fine for synthetic test
//! data, not cryptographic. Swap in the real crate by changing the
//! `rand` entry in the workspace `[workspace.dependencies]` table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from. `T` is a
/// direct type parameter (as in real rand) so that inference can flow
/// from the call site's expected type into unsuffixed range literals.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (here: `f64` in `[0, 1)`, `bool`, ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value from `range`; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed → same sequence, across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Pre-mix so that small consecutive seeds diverge.
                state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-30..335i64);
            assert!((-30..335).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let w = rng.gen_range(1u32..=12);
            assert!((1..=12).contains(&w));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
