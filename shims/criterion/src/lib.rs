//! Offline stand-in for the `criterion` crate (0.5 API line).
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim provides the subset the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: per benchmark it runs a short
//! warm-up, then `sample_size` timed iterations, and prints the median
//! wall time. No plots, no statistics, no baseline storage — but
//! `cargo bench` produces comparable-ish numbers and `cargo bench
//! --no-run` keeps benches compiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to `bench_function` / `bench_with_input`.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly and record the median iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `bnl/4000`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into the printable id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            _criterion: self,
            name,
            samples: 10,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one("", &id.into_benchmark_id(), self.default_samples, f);
        self
    }

    /// Benchmark a closure with a borrowed input, outside any group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id, self.default_samples, |b| f(b, input));
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id(), self.samples, f);
        self
    }

    /// Benchmark a closure with a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id, self.samples, |b| f(b, input));
        self
    }

    /// Close the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        median: None,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    match bencher.median {
        Some(t) => println!("{label:<50} median {:>12.3} ms", t.as_secs_f64() * 1e3),
        None => println!("{label:<50} (no measurement — iter() never called)"),
    }
}

/// Collect benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bencher_records_median() {
        let mut b = Bencher {
            samples: 5,
            median: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.median.is_some());
    }
}
