//! Offline stand-in for the `criterion` crate (0.5 API line).
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim provides the subset the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: per benchmark it runs a short
//! warm-up, then `sample_size` timed iterations, and prints the median
//! wall time. No plots, no statistics, no baseline storage — but
//! `cargo bench` produces comparable-ish numbers and `cargo bench
//! --no-run` keeps benches compiling.
//!
//! In addition to the console table, every bench binary writes its
//! measurements as machine-readable JSON: `BENCH_<name>.json` (named
//! after the bench target) in the current directory, or under
//! `$PREFSQL_BENCH_OUT` when set — so perf trajectories can be tracked
//! without scraping stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work-per-iteration declaration, mirroring `criterion::Throughput`:
/// lets the JSON report derive elements/bytes per second from the
/// median time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical items per iteration
    /// (queries, rows, ...).
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// One finished measurement, collected for the JSON report.
struct Record {
    id: String,
    median_ms: f64,
    throughput: Option<Throughput>,
}

/// Measurements of this bench process, in completion order.
static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Times closures handed to `bench_function` / `bench_with_input`.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly and record the median iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `bnl/4000`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into the printable id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            _criterion: self,
            name,
            samples: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one("", &id.into_benchmark_id(), self.default_samples, None, f);
        self
    }

    /// Benchmark a closure with a borrowed input, outside any group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id, self.default_samples, None, |b| f(b, input));
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare the work one iteration performs; subsequent benchmarks
    /// in this group report derived per-second rates in the JSON.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure with a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id, self.samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        median: None,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    match bencher.median {
        Some(t) => {
            let ms = t.as_secs_f64() * 1e3;
            let rate = throughput
                .map(|tp| {
                    let (count, unit) = match tp {
                        Throughput::Elements(n) => (n, "elem/s"),
                        Throughput::Bytes(n) => (n, "B/s"),
                    };
                    format!("  {:>12.1} {unit}", count as f64 / t.as_secs_f64())
                })
                .unwrap_or_default();
            println!("{label:<50} median {ms:>12.3} ms{rate}");
            RESULTS.lock().expect("results registry").push(Record {
                id: label,
                median_ms: ms,
                throughput,
            });
        }
        None => println!("{label:<50} (no measurement — iter() never called)"),
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the collected measurements as the `BENCH_<name>.json` body.
fn render_json(bench: &str, results: &[Record]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", json_escape(bench));
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let mut fields = format!(
            "\"id\": \"{}\", \"median_ms\": {:.6}",
            json_escape(&r.id),
            r.median_ms
        );
        if let Some(tp) = r.throughput {
            let secs = r.median_ms / 1e3;
            let (key, rate_key, n) = match tp {
                Throughput::Elements(n) => ("elements", "per_second", n),
                Throughput::Bytes(n) => ("bytes", "bytes_per_second", n),
            };
            let _ = write!(
                fields,
                ", \"{key}\": {n}, \"{rate_key}\": {:.3}",
                n as f64 / secs
            );
        }
        let _ = writeln!(out, "    {{ {fields} }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// The bench target's name: the executable's file stem with cargo's
/// trailing `-<16-hex-digit hash>` stripped.
fn bench_name() -> String {
    let stem = std::env::args()
        .next()
        .map(PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".into());
    if let Some(i) = stem.rfind('-') {
        let suffix = &stem[i + 1..];
        if suffix.len() == 16 && suffix.chars().all(|c| c.is_ascii_hexdigit()) {
            return stem[..i].to_string();
        }
    }
    stem
}

/// Write the collected measurements to `BENCH_<name>.json` — in
/// `$PREFSQL_BENCH_OUT` when set, the current directory otherwise.
/// Called by the [`criterion_main!`]-generated `main` after all groups
/// run; a no-op when nothing was measured.
pub fn write_results() {
    let results = RESULTS.lock().expect("results registry");
    if results.is_empty() {
        return;
    }
    let name = bench_name();
    let dir = std::env::var_os("PREFSQL_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    let body = render_json(&name, &results);
    match std::fs::write(&path, body) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

/// Collect benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's
/// macro, then writing the machine-readable `BENCH_<name>.json` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_and_registers_results() {
        benches();
        let results = RESULTS.lock().unwrap();
        assert!(results
            .iter()
            .any(|r| r.id == "shim_smoke/sum/10" && r.median_ms >= 0.0));
        assert!(results.iter().any(|r| r.id == "shim_smoke/plain"));
    }

    #[test]
    fn bencher_records_median() {
        let mut b = Bencher {
            samples: 5,
            median: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.median.is_some());
    }

    #[test]
    fn json_report_shape() {
        let records = vec![
            Record {
                id: "g/a".into(),
                median_ms: 1.5,
                throughput: None,
            },
            Record {
                id: "g/\"quoted\"".into(),
                median_ms: 2.0,
                throughput: Some(Throughput::Elements(300)),
            },
        ];
        let json = render_json("concurrent_queries", &records);
        assert!(json.contains("\"bench\": \"concurrent_queries\""), "{json}");
        assert!(
            json.contains("\"id\": \"g/a\", \"median_ms\": 1.500000"),
            "{json}"
        );
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        // 300 elements at 2 ms/iter = 150 000 elements per second.
        assert!(
            json.contains("\"elements\": 300, \"per_second\": 150000.000"),
            "{json}"
        );
        // The body parses as a JSON object to a naive bracket check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn bench_names_strip_cargo_hashes() {
        // bench_name() reads argv[0]; exercise the stripping rule on the
        // helper's core logic via representative stems.
        fn strip(stem: &str) -> String {
            if let Some(i) = stem.rfind('-') {
                let suffix = &stem[i + 1..];
                if suffix.len() == 16 && suffix.chars().all(|c| c.is_ascii_hexdigit()) {
                    return stem[..i].to_string();
                }
            }
            stem.to_string()
        }
        assert_eq!(
            strip("concurrent_queries-0123456789abcdef"),
            "concurrent_queries"
        );
        assert_eq!(strip("skyline_ablation"), "skyline_ablation");
        assert_eq!(strip("has-dash-0123456789abcdef"), "has-dash");
        assert_eq!(strip("not-a-hash-xyz"), "not-a-hash-xyz");
    }
}
