//! Broader end-to-end suite: BMO semantics on generated workloads,
//! GROUPING, EXPLICIT/CONTAINS preferences, named preferences, pass-through
//! behaviour and result invariants.

use prefsql::{PrefSqlConnection, Value};
use prefsql_workload::{bks01, computers, cosima, hotels, jobs, trips};

fn conn_with(table: prefsql::storage::Table) -> PrefSqlConnection {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut().catalog_mut().create_table(table).unwrap();
    conn
}

#[test]
fn bmo_result_is_exactly_the_maximal_set() {
    // Differential check against a trivially correct reference
    // implementation computed from the raw rows.
    let mut conn = conn_with(computers::table(300, 5));
    let rs = conn
        .query("SELECT id FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)")
        .unwrap();
    let mut got = rs.column_as_ints(0);
    got.sort_unstable();

    let all = conn
        .query("SELECT id, main_memory, cpu_speed FROM computers")
        .unwrap();
    let pts: Vec<(i64, i64, i64)> = all
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                r[1].as_int().unwrap(),
                r[2].as_int().unwrap(),
            )
        })
        .collect();
    let mut expected: Vec<i64> = pts
        .iter()
        .filter(|(_, m, c)| {
            !pts.iter()
                .any(|(_, m2, c2)| m2 >= m && c2 >= c && (m2 > m || c2 > c))
        })
        .map(|(id, _, _)| *id)
        .collect();
    expected.sort_unstable();
    assert_eq!(got, expected);
}

#[test]
fn grouping_returns_per_group_maxima() {
    let mut conn = conn_with(hotels::table(200, 8));
    let rs = conn
        .query("SELECT id, location, price FROM hotels PREFERRING LOWEST(price) GROUPING location")
        .unwrap();
    // Reference: cheapest price per location.
    let all = conn
        .query("SELECT id, location, price FROM hotels")
        .unwrap();
    use std::collections::HashMap;
    let mut best: HashMap<String, i64> = HashMap::new();
    for r in all.rows() {
        let loc = r[1].to_string();
        let p = r[2].as_int().unwrap();
        best.entry(loc)
            .and_modify(|b| *b = (*b).min(p))
            .or_insert(p);
    }
    assert!(rs.len() >= best.len(), "at least one winner per group");
    for r in rs.rows() {
        let loc = r[1].to_string();
        let p = r[2].as_int().unwrap();
        assert_eq!(p, best[&loc], "group {loc} winner must be its minimum");
    }
    // Every location is represented.
    let mut locs: Vec<String> = rs.rows().iter().map(|r| r[1].to_string()).collect();
    locs.sort();
    locs.dedup();
    assert_eq!(locs.len(), best.len());
}

#[test]
fn explicit_preference_end_to_end() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE shirts (id INTEGER, color VARCHAR)")
        .unwrap();
    conn.execute("INSERT INTO shirts VALUES (1, 'red'), (2, 'blue'), (3, 'grey'), (4, 'pink')")
        .unwrap();
    let rs = conn
        .query(
            "SELECT id FROM shirts PREFERRING color EXPLICIT \
             ('red' BETTER 'blue', 'blue' BETTER 'grey') ORDER BY id",
        )
        .unwrap();
    // red undominated; pink unmentioned hence incomparable and undominated;
    // blue and grey dominated by red.
    assert_eq!(rs.column_as_ints(0), vec![1, 4]);
}

#[test]
fn contains_preference_end_to_end() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE docs (id INTEGER, body VARCHAR)")
        .unwrap();
    conn.execute(
        "INSERT INTO docs VALUES \
         (1, 'the skyline operator in databases'), \
         (2, 'pareto optimality and the skyline'), \
         (3, 'cooking recipes')",
    )
    .unwrap();
    let rs = conn
        .query("SELECT id FROM docs PREFERRING body CONTAINS ('skyline', 'pareto')")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2]);
}

#[test]
fn named_preferences_across_statements() {
    let mut conn = conn_with(trips::table(120, 3));
    conn.execute("CREATE PREFERENCE fortnight AS duration AROUND 14")
        .unwrap();
    conn.execute("CREATE PREFERENCE cheap AS LOWEST(price)")
        .unwrap();
    let rs = conn
        .query("SELECT id, duration, price FROM trips PREFERRING PREFERENCE fortnight CASCADE PREFERENCE cheap")
        .unwrap();
    assert!(!rs.is_empty());
    // All winners share the best available |duration - 14|, and among
    // those have minimal price.
    let all = conn.query("SELECT duration, price FROM trips").unwrap();
    let best_dist = all
        .rows()
        .iter()
        .map(|r| (r[0].as_int().unwrap() - 14).abs())
        .min()
        .unwrap();
    let best_price = all
        .rows()
        .iter()
        .filter(|r| (r[0].as_int().unwrap() - 14).abs() == best_dist)
        .map(|r| r[1].as_int().unwrap())
        .min()
        .unwrap();
    for r in rs.rows() {
        assert_eq!((r[1].as_int().unwrap() - 14).abs(), best_dist);
        assert_eq!(r[2].as_int().unwrap(), best_price);
    }
}

#[test]
fn pass_through_results_identical_to_raw_engine() {
    // §3.1: "Queries without preferences are just passed through".
    let table = jobs::table(2_000, 17);
    let mut conn = conn_with(table.clone());
    let mut raw = prefsql::engine::Engine::new();
    raw.catalog_mut().create_table(table).unwrap();

    for sql in [
        "SELECT COUNT(*) FROM profiles",
        "SELECT region, COUNT(*) FROM profiles GROUP BY region ORDER BY region",
        "SELECT id FROM profiles WHERE region = 3 AND salary > 50000 ORDER BY id LIMIT 10",
    ] {
        let via_layer = conn.query(sql).unwrap();
        let direct = raw.execute_sql(sql).unwrap().expect_rows();
        assert_eq!(
            via_layer.rows(),
            direct.rows.as_slice(),
            "mismatch on {sql}"
        );
    }
}

#[test]
fn skyline_query_sizes_follow_bks01_distributions() {
    // E-shape check: anti-correlated ≫ independent ≫ correlated.
    let n = 400;
    let mut sizes = Vec::new();
    for dist in bks01::Distribution::ALL {
        let mut conn = conn_with(bks01::table(n, 3, dist, 23));
        let rs = conn.query(&bks01::skyline_query(3)).unwrap();
        sizes.push(rs.len());
    }
    let (ind, corr, anti) = (sizes[0], sizes[1], sizes[2]);
    assert!(corr < ind, "correlated {corr} !< independent {ind}");
    assert!(ind < anti, "independent {ind} !< anti-correlated {anti}");
}

#[test]
fn cosima_result_sizes_are_survey_friendly() {
    // §4.3: "predominantly the size of the Pareto-optimal set was between
    // 1 and 20".
    let mut in_range = 0;
    let runs = 20;
    for seed in 0..runs {
        let snap = cosima::snapshot(600, seed);
        let mut conn = conn_with(snap.offers);
        let rs = conn.query(cosima::COMPARISON_QUERY).unwrap();
        assert!(!rs.is_empty());
        if (1..=20).contains(&rs.len()) {
            in_range += 1;
        }
    }
    assert!(
        in_range * 10 >= runs * 8,
        "expected ≥80% of snapshots in 1..=20, got {in_range}/{runs}"
    );
}

#[test]
fn top_quality_function_flags_perfect_matches() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (id INTEGER, x INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 10), (2, 12)")
        .unwrap();
    let rs = conn
        .query("SELECT id, TOP(x) FROM t PREFERRING x AROUND 10 ORDER BY id")
        .unwrap();
    // Only the perfect match survives BMO, flagged TRUE.
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows()[0][1], Value::Bool(true));
    // With no perfect match, survivors are flagged FALSE.
    let rs = conn
        .query("SELECT id, TOP(x) FROM t PREFERRING x AROUND 11 ORDER BY id")
        .unwrap();
    assert_eq!(rs.len(), 2);
    for r in rs.rows() {
        assert_eq!(r[1], Value::Bool(false));
    }
}

#[test]
fn nulls_are_incomparable_not_filtered() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (id INTEGER, x INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 5), (2, NULL), (3, 9)")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM t PREFERRING LOWEST(x) ORDER BY id")
        .unwrap();
    // 5 beats 9; NULL is incomparable and survives.
    assert_eq!(rs.column_as_ints(0), vec![1, 2]);
}

#[test]
fn empty_table_gives_empty_bmo() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (id INTEGER, x INTEGER)")
        .unwrap();
    let rs = conn.query("SELECT id FROM t PREFERRING LOWEST(x)").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn preference_on_view() {
    let mut conn = conn_with(computers::table(100, 31));
    conn.execute("CREATE VIEW cheap AS SELECT * FROM computers WHERE price < 2000")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM cheap PREFERRING HIGHEST(main_memory)")
        .unwrap();
    assert!(!rs.is_empty());
}

#[test]
fn grouping_with_but_only() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE cars2 (id INTEGER, make VARCHAR, price INTEGER)")
        .unwrap();
    conn.execute(
        "INSERT INTO cars2 VALUES (1, 'audi', 30000), (2, 'audi', 35000), \
         (3, 'bmw', 90000), (4, 'bmw', 95000)",
    )
    .unwrap();
    // Cheapest per make, but only if within 40000 of the global optimum…
    let rs = conn
        .query(
            "SELECT id FROM cars2 PREFERRING LOWEST(price) GROUPING make \
             BUT ONLY DISTANCE(price) <= 40000 ORDER BY id",
        )
        .unwrap();
    // audi winner (30000, distance 0) passes; bmw winner (90000, distance
    // 60000) is filtered by the quality threshold.
    assert_eq!(rs.column_as_ints(0), vec![1]);
}

/// Cross-stack oracle: run the flagship Opel query through the full
/// rewrite pipeline, then *independently* verify the BMO property using
/// the preference model compiled straight from the AST — every returned
/// row must be undominated among the WHERE-qualified candidates, and every
/// non-returned candidate must be dominated by someone.
#[test]
fn opel_result_is_exactly_the_maximal_set_by_independent_oracle() {
    use prefsql::parser::ast::Statement;
    use prefsql::parser::parse_statement;
    use prefsql::rewrite::{compile_preference, PreferenceRegistry};

    let mut conn = conn_with(prefsql_workload::cars::market(300, 77));
    let sql = prefsql_workload::cars::OPEL_QUERY;
    let result = conn.query(&format!("{sql} ORDER BY id")).unwrap();
    let result_ids: Vec<i64> = result
        .rows()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();

    // Oracle: candidates + slot vectors via plain SQL, dominance via the
    // compiled preference (no rewriter, no NOT EXISTS involved).
    let Statement::Select(q) = parse_statement(sql).unwrap() else {
        unreachable!()
    };
    let resolved = PreferenceRegistry::new()
        .resolve(q.preferring.as_ref().unwrap())
        .unwrap();
    let compiled = compile_preference(&resolved).unwrap();
    let slot_sql = format!(
        "SELECT id, {} FROM car WHERE make = 'Opel'",
        compiled
            .base_exprs
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let candidates = conn.query(&slot_sql).unwrap();
    let slots: Vec<(i64, Vec<prefsql::Value>)> = candidates
        .rows()
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r.values()[1..].to_vec()))
        .collect();
    let mut oracle_ids: Vec<i64> = slots
        .iter()
        .filter(|(_, sv)| {
            !slots
                .iter()
                .any(|(_, other)| compiled.preference.better(other, sv))
        })
        .map(|(id, _)| *id)
        .collect();
    oracle_ids.sort_unstable();
    assert_eq!(
        result_ids, oracle_ids,
        "rewrite output must equal the BMO oracle"
    );
    assert!(!result_ids.is_empty());
}

#[test]
fn grouping_on_multiple_attributes() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE offers (id INTEGER, shop VARCHAR, used BOOLEAN, price INTEGER)")
        .unwrap();
    conn.execute(
        "INSERT INTO offers VALUES \
         (1, 'a', TRUE, 10), (2, 'a', TRUE, 8), \
         (3, 'a', FALSE, 20), (4, 'b', TRUE, 9), (5, 'b', TRUE, 12)",
    )
    .unwrap();
    let rs = conn
        .query("SELECT id FROM offers PREFERRING LOWEST(price) GROUPING shop, used ORDER BY id")
        .unwrap();
    // Cheapest per (shop, used) group: (a,true)->2, (a,false)->3, (b,true)->4.
    assert_eq!(rs.column_as_ints(0), vec![2, 3, 4]);
}

#[test]
fn update_delete_through_the_preference_layer() {
    // DML passes through the layer untouched and composes with preference
    // queries on the mutated state.
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE cars3 (id INTEGER, price INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO cars3 VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    assert_eq!(
        conn.execute("DELETE FROM cars3 WHERE price = 10").unwrap(),
        prefsql::QueryResult::Count(1)
    );
    assert_eq!(
        conn.execute("UPDATE cars3 SET price = 5 WHERE id = 3")
            .unwrap(),
        prefsql::QueryResult::Count(1)
    );
    let rs = conn
        .query("SELECT id FROM cars3 PREFERRING LOWEST(price)")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![3]);
}

#[test]
fn distinct_and_limit_compose_with_preferring() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (id INTEGER, grp VARCHAR, x INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'a', 5), (2, 'a', 5), (3, 'b', 5), (4, 'b', 9)")
        .unwrap();
    let rs = conn
        .query("SELECT DISTINCT grp FROM t PREFERRING LOWEST(x)")
        .unwrap();
    assert_eq!(rs.len(), 2); // winners 1,2,3 project to groups a,b
    let rs = conn
        .query("SELECT id FROM t PREFERRING LOWEST(x) ORDER BY id LIMIT 2")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![1, 2]);
}
