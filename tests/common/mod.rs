//! Fixtures shared across the repo-level integration suites.

use prefsql::storage::Table;

/// Every workload's demo queries as `(table, sql)` pairs — the single
/// fixture list the golden sweeps (`pipeline_equivalence`) and the
/// concurrent stress suite (`concurrent_sessions`) iterate, so a demo
/// query added here is automatically covered everywhere.
pub fn demo_queries() -> Vec<(Table, String)> {
    use prefsql_workload::{
        bks01, cars, computers, cosima, hotels, jobs, oldtimer, products, trips,
    };
    let mut queries: Vec<(Table, String)> = vec![
        (oldtimer::table(), oldtimer::QUERY.to_string()),
        (
            cars::paper_fixture(),
            "SELECT identifier, make FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'"
                .to_string(),
        ),
        (cars::market(250, 71), cars::OPEL_QUERY.to_string()),
        (
            computers::table(200, 72),
            computers::PARETO_QUERY.to_string(),
        ),
        (
            computers::table(200, 72),
            computers::CASCADE_QUERY.to_string(),
        ),
        (trips::table(200, 73), trips::BUT_ONLY_QUERY.to_string()),
        (hotels::table(150, 74), hotels::NEG_QUERY.to_string()),
        (
            hotels::table(150, 75),
            "SELECT id, location, price FROM hotels PREFERRING LOWEST(price) GROUPING location"
                .to_string(),
        ),
        (
            products::table(200, 76),
            products::SEARCH_MASK_QUERY.to_string(),
        ),
        (
            cosima::snapshot(200, 77).offers,
            cosima::COMPARISON_QUERY.to_string(),
        ),
    ];
    for dist in bks01::Distribution::ALL {
        queries.push((bks01::table(150, 3, dist, 78), bks01::skyline_query(3)));
    }
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    queries.push((
        jobs::table(1_500, 79),
        format!(
            "SELECT id FROM profiles WHERE region = 3 PREFERRING {}",
            soft.join(" AND ")
        ),
    ));
    queries
}
