//! Differential and regression coverage for the paged heap-file storage
//! backend — plus the estimation/clamping/refresh bugfix sweep that
//! shipped with it.
//!
//! The seam under test is [`StorageBackend`]: every query the golden
//! demo mix runs against the default in-memory tables must return
//! byte-identical renderings when the same data lives in slotted heap
//! pages behind the smallest legal buffer pool (four pages), where
//! every scan evicts. The paged backend earns its keep only if it is
//! *invisible* at the result surface.

mod common;

use common::demo_queries;
use prefsql::shell::Shell;
use prefsql::storage::Table;
use prefsql::{ExecutionMode, Session};
use prefsql_engine::{BackendKind, EngineCore};
use prefsql_types::knobs::{DEFAULT_POOL_BYTES, MIN_POOL_BYTES};
use std::sync::Arc;
use std::thread;

/// A fresh paged core over the smallest legal pool (four pages), so
/// any table bigger than ~16 KiB scans through constant eviction.
fn paged_core() -> Arc<EngineCore> {
    Arc::new(EngineCore::with_storage(BackendKind::Paged, MIN_POOL_BYTES))
}

/// A fresh in-memory core, explicit so the suite stays deterministic
/// under the CI matrix leg that exports `PREFSQL_BACKEND=paged`.
fn mem_core() -> Arc<EngineCore> {
    Arc::new(EngineCore::with_storage(
        BackendKind::Mem,
        DEFAULT_POOL_BYTES,
    ))
}

/// Copy a mem-backed fixture table into `session`'s core on whatever
/// backend that core is configured for.
fn load(session: &mut Session, fixture: &Table) {
    let mut t = session
        .core()
        .make_table(fixture.name(), fixture.schema().clone())
        .expect("fixture table builds on the configured backend");
    t.insert_all(fixture.rows().iter().cloned())
        .expect("fixture rows insert");
    session
        .engine_mut()
        .catalog_mut()
        .create_table(t)
        .expect("fresh catalog");
}

/// Every demo query, in both execution modes, renders byte-identically
/// whether its table lives in memory or in heap pages behind a
/// four-page pool.
#[test]
fn demo_queries_are_byte_identical_across_backends() {
    for (fixture, sql) in demo_queries() {
        let mut mem = Session::with_core(mem_core());
        let mut paged = Session::with_core(paged_core());
        load(&mut mem, &fixture);
        load(&mut paged, &fixture);
        for mode in [ExecutionMode::Rewrite, ExecutionMode::native()] {
            mem.set_mode(mode);
            paged.set_mode(mode);
            let a = mem.query(&sql).expect("mem run");
            let b = paged.query(&sql).expect("paged run");
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "backend changed the result of {sql:?} in {} mode",
                mode.label()
            );
            // The paged run actually went through the pool.
            assert!(
                b.pool_stats().is_some(),
                "paged results carry pool counters: {sql:?}"
            );
            assert!(a.pool_stats().is_none(), "mem results don't: {sql:?}");
        }
    }
}

/// DML parity: INSERT, UPDATE and DELETE through SQL behave identically
/// on both backends, including index-assisted reads afterwards.
#[test]
fn dml_round_trips_identically_on_both_backends() {
    let script = [
        "CREATE TABLE cars (id INTEGER, make VARCHAR, price INTEGER)",
        "INSERT INTO cars VALUES (1, 'audi', 30), (2, 'bmw', 45), (3, 'opel', 20), (4, 'vw', 25)",
        "CREATE INDEX by_make ON cars (make)",
        "UPDATE cars SET price = price + 5 WHERE make = 'opel'",
        "DELETE FROM cars WHERE id = 2",
        "INSERT INTO cars VALUES (5, 'seat', 18)",
    ];
    let probes = [
        "SELECT id, make, price FROM cars ORDER BY id",
        "SELECT id FROM cars WHERE make = 'opel'",
        "SELECT id, price FROM cars PREFERRING LOWEST(price)",
    ];
    let mut mem = Session::with_core(mem_core());
    let mut paged = Session::with_core(paged_core());
    for stmt in script {
        mem.execute(stmt).expect("mem DML");
        paged.execute(stmt).expect("paged DML");
    }
    for probe in probes {
        assert_eq!(
            mem.query(probe).unwrap().to_string(),
            paged.query(probe).unwrap().to_string(),
            "{probe}"
        );
    }
}

/// A table far larger than the pool scans correctly — the four-page
/// pool must evict continuously, and the shared counters prove it did.
#[test]
fn tiny_pool_scans_a_table_much_larger_than_itself() {
    let core = paged_core();
    let mut s = Session::with_core(Arc::clone(&core));
    s.execute("CREATE TABLE big (id INTEGER, v INTEGER)")
        .unwrap();
    let n: i64 = 4_000;
    for chunk in 0..(n / 200) {
        let values: Vec<String> = (0..200)
            .map(|i| {
                let id = chunk * 200 + i;
                format!("({id}, {})", id % 97)
            })
            .collect();
        s.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
    }
    let rs = s.query("SELECT COUNT(*), SUM(id) FROM big").unwrap();
    assert_eq!(rs.column_as_ints(0), vec![n]);
    assert_eq!(rs.column_as_ints(1), vec![n * (n - 1) / 2]);
    // Every row position survives paging: spot-check an ordered slice.
    let rs = s
        .query("SELECT id FROM big WHERE id >= 3990 ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), (3_990..4_000).collect::<Vec<_>>());
    let stats = core.pool_stats();
    assert!(
        stats.evictions > 0,
        "a 4-page pool over {n} rows must evict: {stats:?}"
    );
    assert!(stats.misses > stats.capacity_pages as u64, "{stats:?}");
}

/// Eight sessions hammer one shared paged core whose pool is four
/// pages: results stay byte-identical to the single-session baseline
/// while pins, evictions and write-backs interleave.
#[test]
fn eight_concurrent_sessions_share_one_tiny_pool() {
    let core = paged_core();
    let mut setup = Session::with_core(Arc::clone(&core));
    setup
        .execute("CREATE TABLE pts (x INTEGER, y INTEGER)")
        .unwrap();
    let values: Vec<String> = (0..2_000)
        .map(|i| format!("({i}, {})", 2_000 - i))
        .collect();
    setup
        .execute(&format!("INSERT INTO pts VALUES {}", values.join(", ")))
        .unwrap();
    let probes = [
        "SELECT x FROM pts PREFERRING LOWEST(x)",
        "SELECT x, y FROM pts WHERE x < 40 ORDER BY x",
        "SELECT COUNT(*) FROM pts",
    ];
    let baselines: Vec<String> = probes
        .iter()
        .map(|p| setup.query(p).unwrap().to_string())
        .collect();
    thread::scope(|scope| {
        for _ in 0..8 {
            let core = Arc::clone(&core);
            let baselines = &baselines;
            scope.spawn(move || {
                let mut s = Session::with_core(core);
                for _ in 0..4 {
                    for (probe, baseline) in probes.iter().zip(baselines) {
                        assert_eq!(&s.query(probe).unwrap().to_string(), baseline, "{probe}");
                    }
                }
            });
        }
    });
    let stats = core.pool_stats();
    assert!(stats.hits > 0 && stats.misses > 0, "{stats:?}");
}

/// The shell surfaces the storage seam: `\backend` introspection and
/// its refusal on a non-empty catalog, `backend=paged` in EXPLAIN, the
/// per-statement `Pool:` counter line, and `\pool` resizing.
#[test]
fn shell_reports_backend_and_pool_observability() {
    let mut sh = Shell::over(Session::with_core(paged_core()));
    assert_eq!(sh.feed_line("\\backend"), "backend: paged\n");
    sh.feed_line("CREATE TABLE cars (id INTEGER, price INTEGER);");
    sh.feed_line("INSERT INTO cars VALUES (1, 10), (2, 20), (3, 15);");
    // Switching under a live catalog is refused, not silently applied.
    let out = sh.feed_line("\\backend mem");
    assert!(out.starts_with("ERROR:"), "{out}");
    assert!(out.contains("already holds tables"), "{out}");
    assert_eq!(sh.feed_line("\\backend"), "backend: paged\n");
    // EXPLAIN names the backend serving the scan...
    let out = sh.feed_line("EXPLAIN SELECT id FROM cars;");
    assert!(out.contains("[backend=paged]"), "{out}");
    // ...and every row result reports its buffer-pool delta.
    let out = sh.feed_line("SELECT id FROM cars PREFERRING LOWEST(price);");
    assert!(out.contains("| 1  |") && out.contains("(1 rows)"), "{out}");
    assert!(out.contains("Pool: size=16 KiB"), "{out}");
    assert!(out.contains("hits="), "{out}");
    assert!(out.contains("misses="), "{out}");
    assert_eq!(sh.feed_line("\\pool 64k"), "pool: 64 KiB\n");
    assert_eq!(sh.feed_line("\\pool"), "pool: 64 KiB\n");
    let out = sh.feed_line("SELECT id FROM cars;");
    assert!(out.contains("Pool: size=64 KiB"), "{out}");
}

/// Materialized preference views serve, maintain and recompute
/// identically when their base table lives in heap pages.
#[test]
fn materialized_views_ride_on_the_paged_backend() {
    let mut s = Session::with_core(paged_core());
    s.execute("CREATE TABLE cars (id INTEGER, price INTEGER, hp INTEGER)")
        .unwrap();
    s.execute("INSERT INTO cars VALUES (1, 10, 90), (2, 20, 120), (3, 15, 120), (4, 30, 200)")
        .unwrap();
    s.execute(
        "CREATE MATERIALIZED PREFERENCE VIEW best AS \
         SELECT * FROM cars PREFERRING LOWEST(price) AND HIGHEST(hp)",
    )
    .unwrap();
    let sql = "SELECT id FROM cars PREFERRING LOWEST(price) AND HIGHEST(hp)";
    s.set_mode(ExecutionMode::native());
    let hit = s.query(sql).unwrap();
    assert_eq!(
        hit.view_activity().and_then(|v| v.served_by.as_deref()),
        Some("best"),
        "the view serves the paged-base query"
    );
    s.set_mode(ExecutionMode::Rewrite);
    let oracle = s.query(sql).unwrap();
    assert_eq!(hit, oracle, "cache hit ≡ recompute over heap pages");
    // Incremental maintenance reads the new row back off its heap page.
    s.execute("INSERT INTO cars VALUES (5, 5, 300)").unwrap();
    assert_eq!(s.last_view_maintained(), 1);
    s.set_mode(ExecutionMode::native());
    assert_eq!(s.query(sql).unwrap().column_as_ints(0), vec![5]);
    s.execute("DELETE FROM cars WHERE id = 5").unwrap();
    let hit = s.query(sql).unwrap();
    s.set_mode(ExecutionMode::Rewrite);
    assert_eq!(hit, s.query(sql).unwrap(), "delete-of-winner promotes");
}

/// Regression (refresh revalidation): a DROP TABLE / CREATE TABLE cycle
/// that changes the base schema must leave REFRESH with a diagnostic
/// and a still-stale view — never a view serving rows projected through
/// the old shape.
#[test]
fn refresh_revalidates_base_schema_after_drop_create() {
    let mut s = Session::with_core(mem_core());
    s.execute("CREATE TABLE cars (id INTEGER, price INTEGER)")
        .unwrap();
    s.execute("INSERT INTO cars VALUES (1, 30), (2, 20)")
        .unwrap();
    s.execute(
        "CREATE MATERIALIZED PREFERENCE VIEW best AS \
         SELECT id FROM cars PREFERRING LOWEST(price)",
    )
    .unwrap();
    s.execute("DROP TABLE cars").unwrap();
    s.execute("CREATE TABLE cars (name VARCHAR)").unwrap();
    let err = s
        .execute("REFRESH MATERIALIZED PREFERENCE VIEW best")
        .expect_err("the view's projection no longer matches the base");
    let msg = err.to_string();
    assert!(
        msg.contains("cannot refresh materialized preference view 'best'"),
        "{msg}"
    );
    assert!(msg.contains("stays stale"), "{msg}");
    let listing = s.command("\\d", "").unwrap();
    assert!(
        listing.contains("best (stale; REFRESH to rebuild)"),
        "{listing}"
    );
    // Restoring a compatible shape lets REFRESH recover the view.
    s.execute("DROP TABLE cars").unwrap();
    s.execute("CREATE TABLE cars (id INTEGER, price INTEGER)")
        .unwrap();
    s.execute("INSERT INTO cars VALUES (7, 3), (8, 9)").unwrap();
    s.execute("REFRESH MATERIALIZED PREFERENCE VIEW best")
        .unwrap();
    s.set_mode(ExecutionMode::native());
    let rs = s
        .query("SELECT id FROM cars PREFERRING LOWEST(price)")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![7]);
    assert_eq!(
        rs.view_activity().and_then(|v| v.served_by.as_deref()),
        Some("best"),
        "recovered view serves again"
    );
}

/// Regression (build-side estimation): a hash join over a join input
/// used to estimate the cross product and build on the wrong side. With
/// equi-key estimates bounded by max(left, right), the 20-row join of
/// t1 and t2 builds against the 100-row t3 probe — `build=left` at both
/// levels of the left-deep plan.
#[test]
fn hash_join_build_side_uses_join_cardinality_estimates() {
    let mut s = Session::with_core(mem_core());
    s.execute("CREATE TABLE t1 (a INTEGER, b INTEGER)").unwrap();
    s.execute("CREATE TABLE t2 (a INTEGER, c INTEGER)").unwrap();
    s.execute("CREATE TABLE t3 (c INTEGER, d INTEGER)").unwrap();
    let rows = |n: i64| -> String {
        (0..n)
            .map(|i| format!("({i}, {i})"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    s.execute(&format!("INSERT INTO t1 VALUES {}", rows(10)))
        .unwrap();
    s.execute(&format!("INSERT INTO t2 VALUES {}", rows(20)))
        .unwrap();
    s.execute(&format!("INSERT INTO t3 VALUES {}", rows(100)))
        .unwrap();
    let plan = match s
        .execute(
            "EXPLAIN SELECT t1.a FROM t1 \
             JOIN t2 ON t1.a = t2.a JOIN t3 ON t2.c = t3.c",
        )
        .unwrap()
    {
        prefsql::QueryResult::Explain(p) => p,
        other => panic!("expected EXPLAIN, got {other:?}"),
    };
    assert_eq!(
        plan.matches("build=left").count(),
        2,
        "both joins build their (estimated) smaller left input:\n{plan}"
    );
    assert!(
        !plan.contains("build=right"),
        "cross-product estimate resurfaced — the 20-row join input must \
         out-rank the 100-row base table:\n{plan}"
    );
    // The flipped build side changes the plan, not the rows.
    let rs = s
        .query("SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a JOIN t3 ON t2.c = t3.c ORDER BY t1.a")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), (0..10).collect::<Vec<_>>());
}
