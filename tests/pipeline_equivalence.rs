//! Equivalence evidence for the physical operator pipeline.
//!
//! Three layers of proof that the refactored executor preserves
//! semantics:
//!
//! 1. A property test over *random preference compositions* (Pareto ⊗ and
//!    prioritization & trees, not just single base preferences): every
//!    tree is executed four ways — tuple-at-a-time, batched (batch sizes
//!    1, 7, 1024), parallel (1, 2, 8 threads, both through the full
//!    pipeline and directly on the decomposable window), and the naive
//!    abstract §3.2 selection — asserting identical result *sequences*
//!    (the native path guarantees input order, so order is part of the
//!    contract, not just the multiset).
//! 2. A golden sweep running every workload's demo queries through both
//!    the paper's rewrite path and the native operator pipeline, diffing
//!    the result sets.
//! 3. A thread-count invariance sweep: the same demo queries, evaluated
//!    natively with `threads ∈ {1, 2, 8, 64}`, must render byte-identical
//!    outputs — including a workload large enough that the cost model
//!    actually engages the parallel window.
//! 4. Window-budget invariance: every random composition tree and every
//!    workload demo query returns identical results with the
//!    external-memory window unbounded, generously bounded (0 spill
//!    passes), and tightly bounded (1 and many spill passes), combined
//!    with the thread knob — plus a 64 k-row acceptance run whose
//!    metrics must show ≥ 2 passes and whose spill directory must be
//!    gone afterwards.

use prefsql::parser::ast::{Expr, PrefExpr, Query, SelectItem, TableRef};
use prefsql::pref::{maximal_naive, maximal_parallel, Preference};
use prefsql::rewrite::compile::compile_preference;
use prefsql::storage::Table;
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::{ExecutionMode, NativeOptions, PrefSqlConnection, SkylineAlgo};
use prefsql_rewrite::PreferenceRegistry;
use proptest::prelude::*;

mod common;
use common::demo_queries;

// ------------------------------------------------------------ proptest

/// A random table over (id, a, b, c) with NULLs mixed into c.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, Option<i64>)>> {
    proptest::collection::vec(
        (
            0i64..12,
            0i64..12,
            prop_oneof![(0i64..8).prop_map(Some), Just(None)],
        ),
        0..40,
    )
}

/// A random preference composition tree over columns a, b, c — base
/// preferences at the leaves, Pareto (`AND`) and prioritization
/// (`CASCADE`) at the inner nodes.
fn arb_pref() -> impl Strategy<Value = PrefExpr> {
    let leaf = prop_oneof![
        Just(PrefExpr::Lowest {
            expr: Expr::col("a")
        }),
        Just(PrefExpr::Highest {
            expr: Expr::col("b")
        }),
        (0i64..12).prop_map(|k| PrefExpr::Around {
            expr: Expr::col("a"),
            target: Box::new(Expr::lit(k)),
        }),
        (0i64..6, 6i64..12).prop_map(|(l, u)| PrefExpr::Between {
            expr: Expr::col("b"),
            low: Box::new(Expr::lit(l)),
            up: Box::new(Expr::lit(u)),
        }),
        proptest::collection::vec(0i64..8, 1..3).prop_map(|vs| PrefExpr::Pos {
            expr: Expr::col("c"),
            values: vs.into_iter().map(Value::Int).collect(),
        }),
        Just(PrefExpr::Neg {
            expr: Expr::col("c"),
            values: vec![Value::Int(3)],
        }),
    ];
    leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PrefExpr::Pareto),
            proptest::collection::vec(inner, 2..3).prop_map(PrefExpr::Prioritized),
        ]
    })
}

fn build_table(rows: &[(i64, i64, Option<i64>)]) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("c", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new("r", schema);
    for (i, (a, b, c)) in rows.iter().enumerate() {
        let c = c.map(Value::Int).unwrap_or(Value::Null);
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int(*a),
            Value::Int(*b),
            c,
        ]))
        .expect("row fits schema");
    }
    t
}

/// The query `SELECT id FROM r PREFERRING <pref>` as an AST.
fn pref_query(pref: PrefExpr) -> Query {
    Query {
        select: vec![SelectItem::Expr {
            expr: Expr::col("id"),
            alias: None,
        }],
        from: vec![TableRef::Named {
            name: "r".into(),
            alias: None,
        }],
        preferring: Some(pref),
        ..Default::default()
    }
}

/// The compiled preference and per-row slot vectors, evaluated
/// out-of-band (base expressions are plain column references here).
fn compiled_slots(table: &Table, pref: &PrefExpr) -> (Preference, Vec<Vec<Value>>) {
    let compiled = compile_preference(pref).expect("compilable preference");
    let schema = table.schema();
    let slot_cols: Vec<usize> = compiled
        .base_exprs
        .iter()
        .map(|e| match e {
            Expr::Column { name, .. } => schema.resolve(None, name).expect("known column"),
            other => panic!("unexpected base expression {other}"),
        })
        .collect();
    let slots: Vec<Vec<Value>> = table
        .rows()
        .iter()
        .map(|r| slot_cols.iter().map(|&c| r[c].clone()).collect())
        .collect();
    (compiled.preference, slots)
}

/// Winner ids of the abstract §3.2 selection via `maximal_naive`.
fn expected_ids(table: &Table, pref: &PrefExpr) -> Vec<i64> {
    let (preference, slots) = compiled_slots(table, pref);
    maximal_naive(&slots, &preference)
        .into_iter()
        .map(|i| table.rows()[i][0].as_int().expect("integer id"))
        .collect()
}

/// Run `query` natively with `opts` against a fresh catalog holding
/// `table`, returning the id column.
fn native_ids(table: &Table, query: &Query, opts: NativeOptions) -> Vec<i64> {
    let registry = PreferenceRegistry::new();
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(table.clone())
        .expect("fresh catalog");
    let rs = prefsql::native::run_native_opts(conn.engine(), &registry, query, opts)
        .expect("native evaluation succeeds");
    rs.column_as_ints(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// naive ≡ bnl ≡ sfs ≡ auto ≡ the planned Preference operator, over
    /// random composition trees and random slot vectors.
    #[test]
    fn algorithms_and_planned_operator_agree(rows in arb_rows(), pref in arb_pref()) {
        let table = build_table(&rows);
        let expected = expected_ids(&table, &pref);
        let query = pref_query(pref);
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::Auto,
        ] {
            let ids = native_ids(&table, &query, NativeOptions::with_algo(algo));
            prop_assert_eq!(
                &ids,
                &expected,
                "algorithm {:?} disagrees with the abstract selection",
                algo
            );
        }
    }

    /// The four execution shapes — tuple-at-a-time, batched (1, 7, 1024)
    /// and parallel (1, 2, 8 threads) — all reproduce the abstract
    /// selection, in the same order (winners stream in input order).
    #[test]
    fn batched_parallel_and_streaming_agree(rows in arb_rows(), pref in arb_pref()) {
        let table = build_table(&rows);
        let expected = expected_ids(&table, &pref);
        let query = pref_query(pref.clone());
        for batch in [None, Some(1), Some(7), Some(1024)] {
            for threads in [1usize, 2, 8] {
                let opts = NativeOptions {
                    algo: SkylineAlgo::Auto,
                    threads,
                    batch,
                    ..NativeOptions::default()
                };
                let ids = native_ids(&table, &query, opts);
                prop_assert_eq!(
                    &ids,
                    &expected,
                    "batch={:?} threads={} disagrees with the abstract selection",
                    batch,
                    threads
                );
            }
        }
        // The cost model keeps tiny inputs serial; force the threaded
        // window directly on the compiled slot vectors so partitioning
        // and the merge-filter are genuinely exercised per tree.
        let (preference, slots) = compiled_slots(&table, &pref);
        let serial = maximal_naive(&slots, &preference);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                maximal_parallel(&slots, &preference, threads),
                serial.clone(),
                "forced parallel window (threads={}) diverged",
                threads
            );
        }
    }

    /// Window-budget invariance: the external-memory window returns the
    /// abstract selection at every budget — unbounded (`None`), generous
    /// (everything fits, 0 spill passes), tight (one overflow run), and
    /// one-tuple-at-a-time tiny (many passes) — combined with the thread
    /// knob and the tuple-at-a-time drive loop.
    #[test]
    fn window_budgets_agree(rows in arb_rows(), pref in arb_pref()) {
        let table = build_table(&rows);
        let expected = expected_ids(&table, &pref);
        let query = pref_query(pref);
        // Raw budgets below the session-knob minimum are deliberate:
        // NativeOptions takes bytes verbatim, so 64 B forces a pass per
        // few tuples even on these 40-row tables.
        for window in [None, Some(1 << 20), Some(512), Some(64)] {
            for threads in [1usize, 2, 8] {
                let opts = NativeOptions {
                    algo: SkylineAlgo::Auto,
                    threads,
                    batch: Some(1024),
                    window_bytes: window,
                };
                let ids = native_ids(&table, &query, opts);
                prop_assert_eq!(
                    &ids,
                    &expected,
                    "window={:?} threads={} disagrees with the abstract selection",
                    window,
                    threads
                );
            }
        }
        // The spool/streaming split must not depend on the drive loop.
        let opts = NativeOptions {
            algo: SkylineAlgo::Auto,
            threads: 1,
            batch: None,
            window_bytes: Some(64),
        };
        prop_assert_eq!(&native_ids(&table, &query, opts), &expected);
    }
}

// ---------------------------------------------------------- golden sweep

/// Run `sql` in rewrite mode and in the native auto pipeline; assert
/// identical row multisets.
fn diff_rewrite_vs_pipeline(table: Table, sql: &str) {
    let mut results = Vec::new();
    for mode in [ExecutionMode::Rewrite, ExecutionMode::native()] {
        let mut conn = PrefSqlConnection::new();
        conn.engine_mut()
            .catalog_mut()
            .create_table(table.clone())
            .expect("fresh catalog");
        conn.set_mode(mode);
        let rs = conn
            .query(sql)
            .unwrap_or_else(|e| panic!("{mode:?} failed on {sql}: {e}"));
        let mut rows: Vec<String> = rs.rows().iter().map(|r| r.to_string()).collect();
        rows.sort();
        results.push((mode, rows));
    }
    assert_eq!(
        results[0].1, results[1].1,
        "rewrite vs pipeline mismatch on: {sql}"
    );
}

#[test]
fn golden_rewrite_vs_pipeline_demo_queries() {
    for (table, sql) in demo_queries() {
        diff_rewrite_vs_pipeline(table, &sql);
    }
}

// ------------------------------------------- thread-count invariance

/// Evaluate `sql` natively with `threads ∈ {1, 2, 8, 64}` (64 exceeds
/// any plausible host width); every rendering must be byte-identical to
/// the single-threaded one.
fn native_thread_sweep(table: &Table, sql: &str) {
    let mut outputs: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 8, 64] {
        let mut conn = PrefSqlConnection::new();
        conn.engine_mut()
            .catalog_mut()
            .create_table(table.clone())
            .expect("fresh catalog");
        conn.set_mode(ExecutionMode::native());
        conn.set_threads(threads);
        let rs = conn
            .query(sql)
            .unwrap_or_else(|e| panic!("threads={threads} failed on {sql}: {e}"));
        outputs.push((threads, rs.to_string()));
    }
    let base = outputs[0].1.clone();
    for (threads, out) in &outputs[1..] {
        assert_eq!(out, &base, "threads={threads} changed the result of: {sql}");
    }
}

#[test]
fn golden_thread_sweep_demo_queries() {
    for (table, sql) in demo_queries() {
        native_thread_sweep(&table, &sql);
    }
}

/// A fresh connection's thread knob comes from `PREFSQL_THREADS` (or
/// the host width) — CI pins that env var to 1 and to 8 and re-runs
/// this suite, so the env-selected degree flows through the *default*
/// path of a query large enough to engage the partitioned window, and
/// must match the explicitly-serial result.
#[test]
fn golden_default_threads_follow_env_on_large_query() {
    use prefsql::pref::PARALLEL_CUTOFF;
    use prefsql_workload::jobs;
    let n = 5_000;
    assert!(n > PARALLEL_CUTOFF);
    let table = jobs::table(n, 82);
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    let sql = format!("SELECT id FROM profiles PREFERRING {}", soft.join(" AND "));

    let mut serial = PrefSqlConnection::new();
    serial
        .engine_mut()
        .catalog_mut()
        .create_table(table.clone())
        .expect("fresh catalog");
    serial.set_mode(ExecutionMode::native());
    serial.set_threads(1);
    let expected = serial.query(&sql).expect("serial run").to_string();

    let mut env_driven = PrefSqlConnection::new(); // knob left at the env default
    env_driven
        .engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("fresh catalog");
    env_driven.set_mode(ExecutionMode::native());
    let got = env_driven.query(&sql).expect("env-default run").to_string();
    assert_eq!(
        got,
        expected,
        "default threads knob ({}) changed the result",
        env_driven.threads()
    );
}

#[test]
fn golden_thread_sweep_engages_parallel_window() {
    use prefsql::pref::{choose_degree, PARALLEL_CUTOFF};
    use prefsql_workload::jobs;
    // 5 000 unfiltered profiles: above the cutoff, so threads >= 2
    // genuinely run the partitioned window, not the serial fallback.
    let n = 5_000;
    assert!(n > PARALLEL_CUTOFF);
    assert!(choose_degree(n, 2) > 1, "cost model must engage here");
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    let sql = format!("SELECT id FROM profiles PREFERRING {}", soft.join(" AND "));
    native_thread_sweep(&jobs::table(n, 80), &sql);
}

// ------------------------------------------- window-budget invariance

/// Evaluate `sql` natively with the external-memory window unbounded,
/// at 64 KiB, and at the 4 KiB minimum; every rendering must be
/// byte-identical to the unbounded one. The demo-query fixtures cover
/// spilling under `BUT ONLY` (the spool pass) and the GROUPING
/// fallback, not just plain skylines.
fn native_window_sweep(table: &Table, sql: &str) {
    let mut outputs: Vec<(Option<usize>, String)> = Vec::new();
    for window in [None, Some(64 << 10), Some(4 << 10)] {
        let mut conn = PrefSqlConnection::new();
        conn.engine_mut()
            .catalog_mut()
            .create_table(table.clone())
            .expect("fresh catalog");
        conn.set_mode(ExecutionMode::native());
        conn.set_window_bytes(window);
        let rs = conn
            .query(sql)
            .unwrap_or_else(|e| panic!("window={window:?} failed on {sql}: {e}"));
        outputs.push((window, rs.to_string()));
    }
    let base = outputs[0].1.clone();
    for (window, out) in &outputs[1..] {
        assert_eq!(out, &base, "window={window:?} changed the result of: {sql}");
    }
}

#[test]
fn golden_window_sweep_demo_queries() {
    for (table, sql) in demo_queries() {
        native_window_sweep(&table, &sql);
    }
}

/// The acceptance run for the external-memory subsystem: a 64 k-row
/// workload query under a window budget orders of magnitude below the
/// candidate-set size (64 k extended rows are several MiB; the budget
/// is 4 KiB, far under a tenth of that). The metrics must prove the
/// multi-pass loop ran — at least one overflow run, at least two passes
/// — and the spill directory must be gone after the query returns.
#[test]
fn golden_external_window_64k_multipass_and_cleanup() {
    use prefsql_workload::jobs;
    let table = jobs::table(64_000, 83);
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    let sql = format!("SELECT id FROM profiles PREFERRING {}", soft.join(" AND "));

    let mut unbounded = PrefSqlConnection::new();
    unbounded
        .engine_mut()
        .catalog_mut()
        .create_table(table.clone())
        .expect("fresh catalog");
    unbounded.set_mode(ExecutionMode::native());
    unbounded.set_window_bytes(None);
    let expected = unbounded.query(&sql).expect("unbounded run").to_string();

    let mut bounded = PrefSqlConnection::new();
    bounded
        .engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("fresh catalog");
    bounded.set_mode(ExecutionMode::native());
    bounded.set_window_bytes(Some(4096));
    let rs = bounded.query(&sql).expect("bounded run");
    assert_eq!(rs.to_string(), expected, "window budget changed the result");

    let m = rs.spill_metrics().expect("bounded run reports metrics");
    assert!(m.runs_written >= 1, "{m:?}");
    assert!(m.passes >= 2, "{m:?}");
    assert!(
        m.bytes_spilled > 10 * 4096,
        "the overflow must dwarf the window: {m:?}"
    );
    let dir = m
        .spill_dir
        .as_ref()
        .expect("spilling records its directory");
    assert!(
        !dir.exists(),
        "all temp files must be removed after the query: {dir:?}"
    );
}

// -------------------------------------------------- plan/EXPLAIN parity

/// EXPLAIN must render the plan the executor runs, in both modes.
#[test]
fn explain_reflects_executed_plan_in_both_modes() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (x INTEGER, y INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 9), (2, 8), (3, 7)")
        .unwrap();

    // Rewrite mode: the host plan tree shows the scan + dominance filter.
    let out = conn
        .execute("EXPLAIN SELECT x FROM t WHERE y > 0 PREFERRING LOWEST(x)")
        .unwrap();
    let text = match out {
        prefsql::QueryResult::Explain(text) => text,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(text.contains("Preference SQL rewrite:"), "{text}");
    assert!(text.contains("Host engine plan:"), "{text}");
    assert!(text.contains("Seq scan"), "{text}");
    assert!(text.contains("Filter:"), "{text}");

    // Native mode: the Preference operator sits on the same planned source.
    conn.set_mode(ExecutionMode::native());
    let out = conn
        .execute("EXPLAIN SELECT x FROM t WHERE y > 0 PREFERRING LOWEST(x)")
        .unwrap();
    let text = match out {
        prefsql::QueryResult::Explain(text) => text,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(text.contains("Native preference plan:"), "{text}");
    assert!(text.contains("Preference (BMO, algo=auto"), "{text}");
    assert!(text.contains("Seq scan"), "{text}");
    assert!(text.contains("Filter:"), "{text}");
}

/// The non-panicking result accessors report rows exactly for SELECTs.
#[test]
fn non_panicking_row_accessors() {
    let mut conn = PrefSqlConnection::new();
    let ddl = conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    assert!(ddl.rows().is_none());
    assert!(ddl.into_rows().is_none());
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    let sel = conn.execute("SELECT x FROM t").unwrap();
    assert_eq!(sel.rows().map(|rs| rs.len()), Some(1));
    assert!(sel.into_rows().is_some());
}
