//! Equivalence evidence for the physical operator pipeline.
//!
//! Two layers of proof that the refactored executor preserves semantics:
//!
//! 1. A property test over *random preference compositions* (Pareto ⊗ and
//!    prioritization & trees, not just single base preferences): the three
//!    maximal-set algorithms, the cost-based auto selection, and the
//!    planned [`prefsql::native::PreferenceOp`] pipeline must all return
//!    exactly the maximal set computed by the abstract §3.2 definition.
//! 2. A golden sweep running every workload's demo queries through both
//!    the paper's rewrite path and the native operator pipeline, diffing
//!    the result sets.

use prefsql::parser::ast::{Expr, PrefExpr, Query, SelectItem, TableRef};
use prefsql::pref::maximal_naive;
use prefsql::rewrite::compile::compile_preference;
use prefsql::storage::Table;
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::{ExecutionMode, PrefSqlConnection, SkylineAlgo};
use prefsql_rewrite::PreferenceRegistry;
use proptest::prelude::*;

// ------------------------------------------------------------ proptest

/// A random table over (id, a, b, c) with NULLs mixed into c.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, Option<i64>)>> {
    proptest::collection::vec(
        (
            0i64..12,
            0i64..12,
            prop_oneof![(0i64..8).prop_map(Some), Just(None)],
        ),
        0..40,
    )
}

/// A random preference composition tree over columns a, b, c — base
/// preferences at the leaves, Pareto (`AND`) and prioritization
/// (`CASCADE`) at the inner nodes.
fn arb_pref() -> impl Strategy<Value = PrefExpr> {
    let leaf = prop_oneof![
        Just(PrefExpr::Lowest {
            expr: Expr::col("a")
        }),
        Just(PrefExpr::Highest {
            expr: Expr::col("b")
        }),
        (0i64..12).prop_map(|k| PrefExpr::Around {
            expr: Expr::col("a"),
            target: Box::new(Expr::lit(k)),
        }),
        (0i64..6, 6i64..12).prop_map(|(l, u)| PrefExpr::Between {
            expr: Expr::col("b"),
            low: Box::new(Expr::lit(l)),
            up: Box::new(Expr::lit(u)),
        }),
        proptest::collection::vec(0i64..8, 1..3).prop_map(|vs| PrefExpr::Pos {
            expr: Expr::col("c"),
            values: vs.into_iter().map(Value::Int).collect(),
        }),
        Just(PrefExpr::Neg {
            expr: Expr::col("c"),
            values: vec![Value::Int(3)],
        }),
    ];
    leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PrefExpr::Pareto),
            proptest::collection::vec(inner, 2..3).prop_map(PrefExpr::Prioritized),
        ]
    })
}

fn build_table(rows: &[(i64, i64, Option<i64>)]) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("c", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new("r", schema);
    for (i, (a, b, c)) in rows.iter().enumerate() {
        let c = c.map(Value::Int).unwrap_or(Value::Null);
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int(*a),
            Value::Int(*b),
            c,
        ]))
        .expect("row fits schema");
    }
    t
}

/// The query `SELECT id FROM r PREFERRING <pref>` as an AST.
fn pref_query(pref: PrefExpr) -> Query {
    Query {
        select: vec![SelectItem::Expr {
            expr: Expr::col("id"),
            alias: None,
        }],
        from: vec![TableRef::Named {
            name: "r".into(),
            alias: None,
        }],
        preferring: Some(pref),
        ..Default::default()
    }
}

/// Winner ids computed out-of-band: evaluate each base expression (plain
/// column references here) into slot vectors and apply the abstract §3.2
/// selection via `maximal_naive`.
fn expected_ids(table: &Table, pref: &PrefExpr) -> Vec<i64> {
    let compiled = compile_preference(pref).expect("compilable preference");
    let schema = table.schema();
    let slot_cols: Vec<usize> = compiled
        .base_exprs
        .iter()
        .map(|e| match e {
            Expr::Column { name, .. } => schema.resolve(None, name).expect("known column"),
            other => panic!("unexpected base expression {other}"),
        })
        .collect();
    let slots: Vec<Vec<Value>> = table
        .rows()
        .iter()
        .map(|r| slot_cols.iter().map(|&c| r[c].clone()).collect())
        .collect();
    maximal_naive(&slots, &compiled.preference)
        .into_iter()
        .map(|i| table.rows()[i][0].as_int().expect("integer id"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// naive ≡ bnl ≡ sfs ≡ auto ≡ the planned Preference operator, over
    /// random composition trees and random slot vectors.
    #[test]
    fn algorithms_and_planned_operator_agree(rows in arb_rows(), pref in arb_pref()) {
        let table = build_table(&rows);
        let expected = expected_ids(&table, &pref);
        let query = pref_query(pref);
        let registry = PreferenceRegistry::new();
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::Auto,
        ] {
            let mut conn = PrefSqlConnection::new();
            conn.engine_mut()
                .catalog_mut()
                .create_table(table.clone())
                .expect("fresh catalog");
            let rs = prefsql::native::run_native(conn.engine(), &registry, &query, algo)
                .expect("native evaluation succeeds");
            let ids = rs.column_as_ints(0);
            prop_assert_eq!(
                &ids,
                &expected,
                "algorithm {:?} disagrees with the abstract selection",
                algo
            );
        }
    }
}

// ---------------------------------------------------------- golden sweep

/// Run `sql` in rewrite mode and in the native auto pipeline; assert
/// identical row multisets.
fn diff_rewrite_vs_pipeline(table: Table, sql: &str) {
    let mut results = Vec::new();
    for mode in [ExecutionMode::Rewrite, ExecutionMode::native()] {
        let mut conn = PrefSqlConnection::new();
        conn.engine_mut()
            .catalog_mut()
            .create_table(table.clone())
            .expect("fresh catalog");
        conn.set_mode(mode);
        let rs = conn
            .query(sql)
            .unwrap_or_else(|e| panic!("{mode:?} failed on {sql}: {e}"));
        let mut rows: Vec<String> = rs.rows().iter().map(|r| r.to_string()).collect();
        rows.sort();
        results.push((mode, rows));
    }
    assert_eq!(
        results[0].1, results[1].1,
        "rewrite vs pipeline mismatch on: {sql}"
    );
}

#[test]
fn golden_oldtimer_demo() {
    use prefsql_workload::oldtimer;
    diff_rewrite_vs_pipeline(oldtimer::table(), oldtimer::QUERY);
}

#[test]
fn golden_cars_demos() {
    use prefsql_workload::cars;
    diff_rewrite_vs_pipeline(
        cars::paper_fixture(),
        "SELECT identifier, make FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'",
    );
    diff_rewrite_vs_pipeline(cars::market(250, 71), cars::OPEL_QUERY);
}

#[test]
fn golden_computers_demos() {
    use prefsql_workload::computers;
    let t = computers::table(200, 72);
    diff_rewrite_vs_pipeline(t.clone(), computers::PARETO_QUERY);
    diff_rewrite_vs_pipeline(t, computers::CASCADE_QUERY);
}

#[test]
fn golden_trips_demo() {
    use prefsql_workload::trips;
    diff_rewrite_vs_pipeline(trips::table(200, 73), trips::BUT_ONLY_QUERY);
}

#[test]
fn golden_hotels_demos() {
    use prefsql_workload::hotels;
    diff_rewrite_vs_pipeline(hotels::table(150, 74), hotels::NEG_QUERY);
    diff_rewrite_vs_pipeline(
        hotels::table(150, 75),
        "SELECT id, location, price FROM hotels PREFERRING LOWEST(price) GROUPING location",
    );
}

#[test]
fn golden_products_demo() {
    use prefsql_workload::products;
    diff_rewrite_vs_pipeline(products::table(200, 76), products::SEARCH_MASK_QUERY);
}

#[test]
fn golden_cosima_demo() {
    use prefsql_workload::cosima;
    diff_rewrite_vs_pipeline(cosima::snapshot(200, 77).offers, cosima::COMPARISON_QUERY);
}

#[test]
fn golden_bks01_demos() {
    use prefsql_workload::bks01;
    for dist in bks01::Distribution::ALL {
        diff_rewrite_vs_pipeline(bks01::table(150, 3, dist, 78), &bks01::skyline_query(3));
    }
}

#[test]
fn golden_jobs_demo() {
    use prefsql_workload::jobs;
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    let sql = format!(
        "SELECT id FROM profiles WHERE region = 3 PREFERRING {}",
        soft.join(" AND ")
    );
    diff_rewrite_vs_pipeline(jobs::table(1_500, 79), &sql);
}

// -------------------------------------------------- plan/EXPLAIN parity

/// EXPLAIN must render the plan the executor runs, in both modes.
#[test]
fn explain_reflects_executed_plan_in_both_modes() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (x INTEGER, y INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 9), (2, 8), (3, 7)")
        .unwrap();

    // Rewrite mode: the host plan tree shows the scan + dominance filter.
    let out = conn
        .execute("EXPLAIN SELECT x FROM t WHERE y > 0 PREFERRING LOWEST(x)")
        .unwrap();
    let text = match out {
        prefsql::QueryResult::Explain(text) => text,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(text.contains("Preference SQL rewrite:"), "{text}");
    assert!(text.contains("Host engine plan:"), "{text}");
    assert!(text.contains("Seq scan"), "{text}");
    assert!(text.contains("Filter:"), "{text}");

    // Native mode: the Preference operator sits on the same planned source.
    conn.set_mode(ExecutionMode::native());
    let out = conn
        .execute("EXPLAIN SELECT x FROM t WHERE y > 0 PREFERRING LOWEST(x)")
        .unwrap();
    let text = match out {
        prefsql::QueryResult::Explain(text) => text,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(text.contains("Native preference plan:"), "{text}");
    assert!(text.contains("Preference (BMO, algo=auto"), "{text}");
    assert!(text.contains("Seq scan"), "{text}");
    assert!(text.contains("Filter:"), "{text}");
}

/// The non-panicking result accessors report rows exactly for SELECTs.
#[test]
fn non_panicking_row_accessors() {
    let mut conn = PrefSqlConnection::new();
    let ddl = conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    assert!(ddl.rows().is_none());
    assert!(ddl.into_rows().is_none());
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    let sel = conn.execute("SELECT x FROM t").unwrap();
    assert_eq!(sel.rows().map(|rs| rs.len()), Some(1));
    assert!(sel.into_rows().is_some());
}
