//! Exact reproductions of every worked example in the paper, end to end
//! through the public `PrefSqlConnection` API.

use prefsql::{PrefSqlConnection, Value};
use prefsql_workload::{cars, oldtimer};

fn load(conn: &mut PrefSqlConnection, table: prefsql::storage::Table) {
    conn.engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("table loads");
}

/// §2.2.3: the adorned Pareto-optimal oldtimer result, exactly as printed
/// in the paper:
///
/// ```text
/// Selma   red     40   3   0
/// Homer   yellow  35   2   5
/// Maggie  white   19   1   21
/// ```
#[test]
fn oldtimer_answer_explanation() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, oldtimer::table());
    let rs = conn.query(oldtimer::QUERY).unwrap();

    let mut rows: Vec<(String, String, i64, i64, i64)> = rs
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].to_string(),
                r[1].to_string(),
                r[2].as_int().unwrap(),
                r[3].as_int().unwrap(),
                r[4].as_int().unwrap(),
            )
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2)); // paper lists by age desc
    assert_eq!(
        rows,
        vec![
            ("Selma".into(), "red".into(), 40, 3, 0),
            ("Homer".into(), "yellow".into(), 35, 2, 5),
            ("Maggie".into(), "white".into(), 19, 1, 21),
        ]
    );
}

/// §3.2: the Cars example — `PREFERRING Make = 'Audi' AND Diesel = 'yes'`
/// returns the Audi and the diesel BMW; the Volkswagen is dominated.
#[test]
fn cars_pareto_maxima() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, cars::paper_fixture());
    let rs = conn
        .query(
            "SELECT identifier FROM cars PREFERRING make = 'Audi' AND diesel = 'yes' \
             ORDER BY identifier",
        )
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![1, 2]);
}

/// §3.2 continued: the same result materialized through the paper's own
/// CREATE VIEW + INSERT INTO Max rewrite, executed as raw SQL on the host
/// engine via the pass-through path.
#[test]
fn cars_manual_rewrite_agrees() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, cars::paper_fixture());
    conn.execute_script(
        "CREATE VIEW aux AS \
         SELECT *, CASE WHEN make = 'Audi' THEN 1 ELSE 2 END AS makelevel, \
         CASE WHEN diesel = 'yes' THEN 1 ELSE 2 END AS diesellevel FROM cars; \
         CREATE TABLE max_rel (identifier INTEGER, make VARCHAR, model VARCHAR, \
         price INTEGER, mileage INTEGER, airbag VARCHAR, diesel VARCHAR); \
         INSERT INTO max_rel \
         SELECT identifier, make, model, price, mileage, airbag, diesel \
         FROM aux a1 WHERE NOT EXISTS (SELECT 1 FROM aux a2 \
           WHERE a2.makelevel <= a1.makelevel AND a2.diesellevel <= a1.diesellevel \
           AND (a2.makelevel < a1.makelevel OR a2.diesellevel < a1.diesellevel));",
    )
    .unwrap();
    let manual = conn
        .query("SELECT identifier FROM max_rel ORDER BY identifier")
        .unwrap();
    let automatic = conn
        .query(
            "SELECT identifier FROM cars PREFERRING make = 'Audi' AND diesel = 'yes' \
             ORDER BY identifier",
        )
        .unwrap();
    assert_eq!(manual.column_as_ints(0), automatic.column_as_ints(0));
}

/// §2.2.1: `duration AROUND 14` returns 14-day trips if any exist,
/// otherwise the closest available duration.
#[test]
fn around_trips_bmo() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE trips (id INTEGER, duration INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO trips VALUES (1, 7), (2, 14), (3, 14), (4, 21)")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM trips PREFERRING duration AROUND 14 ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2, 3]);
    // Remove the exact matches: both 7 and 21 are now 7 days off — both
    // come back (the BMO never returns an empty answer on non-empty input).
    conn.execute("CREATE TABLE trips2 (id INTEGER, duration INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO trips2 VALUES (1, 7), (4, 21)")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM trips2 PREFERRING duration AROUND 14 ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![1, 4]);
}

/// §2.2.1: `HIGHEST(area)` with an arithmetic expression also admissible.
#[test]
fn highest_apartments() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE apartments (id INTEGER, area INTEGER, rooms INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO apartments VALUES (1, 54, 2), (2, 120, 4), (3, 120, 5)")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM apartments PREFERRING HIGHEST(area) ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2, 3]);
    // Arithmetic expression: area per room.
    let rs = conn
        .query("SELECT id FROM apartments PREFERRING HIGHEST(area / rooms)")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2]);
}

/// §2.2.1: POS preference — Java or C++ programmers preferred, everyone
/// else acceptable as fallback.
#[test]
fn pos_programmers() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE programmers (id INTEGER, exp VARCHAR)")
        .unwrap();
    conn.execute(
        "INSERT INTO programmers VALUES (1, 'cobol'), (2, 'java'), (3, 'C++'), (4, 'perl')",
    )
    .unwrap();
    let rs = conn
        .query("SELECT id FROM programmers PREFERRING exp IN ('java', 'C++') ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2, 3]);
    // No Java/C++ programmer: everyone is equally acceptable.
    conn.execute("CREATE TABLE programmers2 (id INTEGER, exp VARCHAR)")
        .unwrap();
    conn.execute("INSERT INTO programmers2 VALUES (1, 'cobol'), (4, 'perl')")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM programmers2 PREFERRING exp IN ('java', 'C++') ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![1, 4]);
}

/// §2.2.1: NEG preference — hotels outside downtown preferred, downtown
/// still better than nothing.
#[test]
fn neg_hotels() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE hotels (id INTEGER, location VARCHAR)")
        .unwrap();
    conn.execute("INSERT INTO hotels VALUES (1, 'downtown'), (2, 'suburb'), (3, 'airport')")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM hotels PREFERRING location <> 'downtown' ORDER BY id")
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2, 3]);
    conn.execute("CREATE TABLE hotels2 (id INTEGER, location VARCHAR)")
        .unwrap();
    conn.execute("INSERT INTO hotels2 VALUES (1, 'downtown')")
        .unwrap();
    let rs = conn
        .query("SELECT id FROM hotels2 PREFERRING location <> 'downtown'")
        .unwrap();
    assert_eq!(
        rs.column_as_ints(0),
        vec![1],
        "downtown better than nothing"
    );
}

/// §2.2.2: Pareto accumulation — maximal memory and CPU speed equally
/// important; incomparable trade-offs all come back.
#[test]
fn pareto_computers() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE computers (id INTEGER, main_memory INTEGER, cpu_speed INTEGER)")
        .unwrap();
    conn.execute(
        "INSERT INTO computers VALUES (1, 512, 1200), (2, 1024, 800), (3, 512, 800), (4, 256, 600)",
    )
    .unwrap();
    let rs = conn
        .query(
            "SELECT id FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed) \
             ORDER BY id",
        )
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![1, 2]);
}

/// §2.2.2: cascade — memory first, then black or brown.
#[test]
fn cascade_computers() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE computers (id INTEGER, main_memory INTEGER, color VARCHAR)")
        .unwrap();
    conn.execute(
        "INSERT INTO computers VALUES (1, 1024, 'beige'), (2, 1024, 'black'), (3, 512, 'black')",
    )
    .unwrap();
    let rs = conn
        .query(
            "SELECT id FROM computers \
             PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown')",
        )
        .unwrap();
    assert_eq!(rs.column_as_ints(0), vec![2]);
}

/// §2.2.2: the flagship Opel query runs end to end on a synthetic market
/// and respects the hard constraint plus the preference hierarchy.
#[test]
fn opel_flagship_query() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, cars::market(400, 13));
    let rs = conn.query(cars::OPEL_QUERY).unwrap();
    assert!(!rs.is_empty(), "market always offers some best match");
    // Hard constraint respected.
    let make_col = rs.column_names().iter().position(|c| *c == "make").unwrap();
    for v in rs.column(make_col) {
        assert_eq!(*v, Value::str("Opel"));
    }
    // Cascade sanity: every result must be maximal; spot-check that no
    // returned row is beaten by another returned row on the top cascade
    // level with equal Pareto stats (exercised more deeply in the
    // differential suite).
    assert!(rs.len() < 400);
}

/// §2.2.4: BUT ONLY quality control can produce an empty result — "but
/// this correlates with the user's explicit intension!"
#[test]
fn but_only_trips() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE trips (id INTEGER, start_day DATE, duration INTEGER)")
        .unwrap();
    conn.execute(
        "INSERT INTO trips VALUES \
         (1, DATE '1999-07-04', 13), \
         (2, DATE '1999-07-10', 14), \
         (3, DATE '1999-07-03', 21)",
    )
    .unwrap();
    let rs = conn
        .query(
            "SELECT id FROM trips \
             PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
             BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
        )
        .unwrap();
    // Only trip 1 is within both thresholds (day off by 1, duration by 1).
    assert_eq!(rs.column_as_ints(0), vec![1]);
    // Tighten to impossible thresholds: empty result, as the user asked.
    let rs = conn
        .query(
            "SELECT id FROM trips \
             PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
             BUT ONLY DISTANCE(start_day) <= 0 AND DISTANCE(duration) <= 0",
        )
        .unwrap();
    assert!(rs.is_empty());
}

/// §4.1: the washing-machine search-mask query runs end to end.
#[test]
fn washing_machine_search_mask() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, prefsql_workload::products::table(200, 21));
    let rs = conn
        .query(prefsql_workload::products::SEARCH_MASK_QUERY)
        .unwrap();
    assert!(!rs.is_empty());
    let manu = rs
        .column_names()
        .iter()
        .position(|c| *c == "manufacturer")
        .unwrap();
    for v in rs.column(manu) {
        assert_eq!(*v, Value::str("Aturi"), "hard WHERE respected");
    }
}

/// §2.2.5: preference queries as INSERT sub-queries.
#[test]
fn insert_with_preferring_subquery() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, cars::paper_fixture());
    conn.execute(
        "CREATE TABLE shortlist (identifier INTEGER, make VARCHAR, model VARCHAR, \
         price INTEGER, mileage INTEGER, airbag VARCHAR, diesel VARCHAR)",
    )
    .unwrap();
    let n = conn
        .execute("INSERT INTO shortlist SELECT * FROM cars PREFERRING LOWEST(price)")
        .unwrap();
    assert_eq!(n, prefsql::QueryResult::Count(1));
    let rs = conn.query("SELECT identifier FROM shortlist").unwrap();
    assert_eq!(rs.column_as_ints(0), vec![3]);
}

/// §2.2.5: the documented restriction — PREFERRING in WHERE sub-queries
/// is rejected with a diagnostic.
#[test]
fn where_subquery_restriction() {
    let mut conn = PrefSqlConnection::new();
    load(&mut conn, cars::paper_fixture());
    let err = conn
        .query(
            "SELECT * FROM cars WHERE price IN \
             (SELECT price FROM cars PREFERRING LOWEST(price))",
        )
        .unwrap_err();
    assert!(err.to_string().contains("WHERE clause"), "{err}");
}
