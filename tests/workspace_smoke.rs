//! Workspace smoke tests: the example binaries must keep compiling and
//! the `experiments` binary must run its smallest scenario end to end.
//!
//! These shell out to the `cargo` that is running this test suite, with
//! a separate target dir (`target/smoke`) so the nested invocation never
//! contends with the outer build's directory lock.

use std::path::Path;
use std::process::Command;

/// Workspace root (this test is wired into `crates/core`).
fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn cargo(args: &[&str]) -> std::process::Output {
    // --target-dir must precede any `--` separator in `args`, or cargo
    // would hand it to the spawned binary instead of honouring it.
    let (subcommand, rest) = args.split_first().expect("cargo needs a subcommand");
    Command::new(env!("CARGO"))
        .arg(subcommand)
        .arg("--target-dir")
        .arg("target/smoke")
        .args(rest)
        .current_dir(workspace_root())
        .output()
        .expect("failed to spawn cargo")
}

#[test]
fn all_example_binaries_compile() {
    for example in [
        "quickstart",
        "cosima_metasearch",
        "eshop_search",
        "job_search",
        "mobile_search",
    ] {
        assert!(
            workspace_root()
                .join(format!("examples/{example}.rs"))
                .exists(),
            "example source examples/{example}.rs is missing"
        );
    }
    let out = cargo(&["build", "--examples", "--quiet"]);
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn experiments_binary_runs_smallest_scenario() {
    // E2 is the smallest experiment: the paper's 3-row oldtimer fixture.
    let out = cargo(&[
        "run",
        "--quiet",
        "-p",
        "prefsql-bench",
        "--bin",
        "experiments",
        "--",
        "e2",
    ]);
    assert!(
        out.status.success(),
        "experiments e2 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("oldtimer"),
        "experiments e2 produced unexpected output:\n{stdout}"
    );
}
