//! Concurrent-correctness stress suite for the shared engine core.
//!
//! Two invariants pin the session runtime:
//!
//! 1. *Read stability*: N threads, each with its own [`Session`] over
//!    one shared core, replay the golden `demo_queries()` mix (in both
//!    execution modes, threads offset so modes interleave) and every
//!    rendering must be byte-identical to the single-session baseline
//!    captured before the flood.
//! 2. *Statement atomicity*: concurrent writers inserting fixed-size
//!    batches and rewriting a column in single statements are never
//!    observed mid-statement by concurrent readers.

use prefsql::storage::Table;
use prefsql::{ExecutionMode, Session};
use prefsql_engine::EngineCore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

mod common;
use common::demo_queries;

/// Stress degree: the session-default thread knob (CI pins
/// `PREFSQL_THREADS=8`), kept in [2, 8] so the test always exercises
/// real concurrency without exploding on wide hosts.
fn stress_threads() -> usize {
    prefsql::knobs::default_threads().clamp(2, 8)
}

/// Load every demo table into one shared core, deduplicating by table
/// name (several demo queries reuse a name with identical content;
/// queries whose same-named table *differs* are dropped from the mix).
fn shared_demo_core() -> (Arc<EngineCore>, Vec<String>) {
    let core = EngineCore::shared();
    let mut session = Session::with_core(Arc::clone(&core));
    let mut loaded: HashMap<String, Table> = HashMap::new();
    let mut queries = Vec::new();
    for (table, sql) in demo_queries() {
        let name = table.name().to_string();
        match loaded.get(&name) {
            None => {
                session
                    .engine_mut()
                    .catalog_mut()
                    .create_table(table.clone())
                    .expect("fresh catalog");
                loaded.insert(name, table);
                queries.push(sql);
            }
            Some(existing)
                if existing.schema() == table.schema() && existing.rows() == table.rows() =>
            {
                queries.push(sql)
            }
            Some(_) => {} // same name, different fixture: not co-loadable
        }
    }
    assert!(
        queries.len() >= 8,
        "the dedup must keep a substantial mix, got {}",
        queries.len()
    );
    (core, queries)
}

/// Render `sql` through a session in `mode`.
fn run_in(session: &mut Session, mode: ExecutionMode, sql: &str) -> String {
    session.set_mode(mode);
    session
        .query(sql)
        .unwrap_or_else(|e| panic!("{mode:?} failed on {sql}: {e}"))
        .to_string()
}

#[test]
fn stress_demo_mix_is_byte_identical_across_sessions() {
    let (core, queries) = shared_demo_core();
    let modes = [ExecutionMode::Rewrite, ExecutionMode::native()];

    // Single-session baseline, both modes, before any concurrency.
    let baseline: Vec<[String; 2]> = {
        let mut s = Session::with_core(Arc::clone(&core));
        queries
            .iter()
            .map(|sql| [run_in(&mut s, modes[0], sql), run_in(&mut s, modes[1], sql)])
            .collect()
    };

    let n = stress_threads();
    let workers: Vec<_> = (0..n)
        .map(|t| {
            let core = Arc::clone(&core);
            let queries = queries.clone();
            let baseline = baseline.clone();
            thread::spawn(move || {
                let mut s = Session::with_core(core);
                // Each thread starts at a different query and alternates
                // modes with an offset, so rewrite and native runs of
                // every query overlap across threads.
                for step in 0..queries.len() {
                    let qi = (step + t) % queries.len();
                    let mi = (step + t) % 2;
                    let got = run_in(&mut s, modes[mi], &queries[qi]);
                    assert_eq!(
                        got, baseline[qi][mi],
                        "thread {t} diverged from the single-session baseline on: {}",
                        queries[qi]
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("stress thread panicked");
    }
}

#[test]
fn dml_statements_are_never_observed_mid_statement() {
    const BATCH: usize = 7;
    const ROUNDS: usize = 25;
    const UPD_ROWS: usize = 50;

    // Two tables, one invariant each — the invariants must hold at
    // *statement* boundaries even with several writers interleaving:
    //
    // * `ins`: writers append whole BATCH-row INSERT statements, so any
    //   snapshot's row count is a multiple of BATCH;
    // * `upd`: writers rewrite *every* row's y in one UPDATE statement,
    //   so any snapshot (always taken between statements) is uniform.
    //
    // (They have to be separate tables: an INSERT from one writer
    // landing between another writer's UPDATEs legitimately makes a
    // mixed-y table without any statement being half-applied.)
    let core = EngineCore::shared();
    let mut setup = Session::with_core(Arc::clone(&core));
    setup.execute("CREATE TABLE ins (x INTEGER)").unwrap();
    setup.execute("CREATE TABLE upd (y INTEGER)").unwrap();
    let seed: Vec<String> = (0..UPD_ROWS).map(|_| "(0)".to_string()).collect();
    setup
        .execute(&format!("INSERT INTO upd VALUES {}", seed.join(", ")))
        .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut s = Session::with_core(core);
                for round in 0..ROUNDS {
                    // One INSERT statement per 7-row batch...
                    let values: Vec<String> = (0..BATCH)
                        .map(|i| format!("({})", (w * ROUNDS + round) * BATCH + i))
                        .collect();
                    s.execute(&format!("INSERT INTO ins VALUES {}", values.join(", ")))
                        .unwrap();
                    // ...and one UPDATE statement rewriting every row's y
                    // to one writer-unique constant.
                    s.execute(&format!("UPDATE upd SET y = {}", w * ROUNDS + round))
                        .unwrap();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let core = Arc::clone(&core);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut s = Session::with_core(core);
                let mut observations = 0u32;
                while !done.load(Ordering::Relaxed) || observations == 0 {
                    // Insert atomicity: the row count only moves in
                    // whole batches.
                    let rs = s.query("SELECT COUNT(*) FROM ins").unwrap();
                    let count = rs.column_as_ints(0)[0];
                    assert_eq!(
                        count % BATCH as i64,
                        0,
                        "a partially applied INSERT batch became visible"
                    );
                    // Update atomicity: a whole-table UPDATE is all or
                    // nothing, so y is uniform in every snapshot.
                    let rs = s.query("SELECT MIN(y), MAX(y) FROM upd").unwrap();
                    let row = &rs.rows()[0];
                    assert_eq!(row[0], row[1], "a half-applied UPDATE became visible");
                    observations += 1;
                }
                assert!(observations > 0);
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }

    let mut check = Session::with_core(core);
    let rs = check.query("SELECT COUNT(*) FROM ins").unwrap();
    assert_eq!(rs.column_as_ints(0)[0], (2 * ROUNDS * BATCH) as i64);
    let rs = check.query("SELECT COUNT(*) FROM upd").unwrap();
    assert_eq!(rs.column_as_ints(0)[0], UPD_ROWS as i64);
}
