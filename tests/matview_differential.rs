//! Differential evidence for incremental materialized-preference-view
//! maintenance.
//!
//! The serving contract under test: after *every* DML statement, a query
//! served from the view's stored winner set is byte-identical (schema,
//! rows, and row order) to recomputing the BMO from scratch. Three
//! layers of proof:
//!
//! 1. A property test interleaving random INSERT/DELETE/UPDATE sequences
//!    against random preference composition trees (Pareto ⊗ and
//!    prioritization & over a/b/c, NULLs included). Two sessions on
//!    *separate* cores apply the identical DML stream — one owns a
//!    materialized view (cache hits), the other recomputes cold — so the
//!    only variable is the cache. Checked after every single statement,
//!    under threads ∈ {1, 8} × window ∈ {off, 4 KiB}, against both the
//!    native recompute and the paper's rewrite path.
//! 2. A deterministic delete-of-winner scenario: deleting a winner must
//!    promote exactly the rows it exclusively dominated, without a full
//!    rebuild (the maintained entries equal a REFRESH-built set).
//! 3. A concurrent-sessions stress case: writer sessions hammer DML on
//!    the base table while reader sessions are served from the view;
//!    afterwards the incrementally maintained content must equal both a
//!    cold recompute and a from-scratch REFRESH.

use prefsql::engine::EngineCore;
use prefsql::parser::ast::{Expr, PrefExpr};
use prefsql::types::Value;
use prefsql::{ExecutionMode, ResultSet, Session};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// --------------------------------------------------------- generators

/// A random preference composition tree over columns a, b, c — base
/// preferences at the leaves, Pareto (`AND`) and prioritization
/// (`CASCADE`) at the inner nodes.
fn arb_pref() -> impl Strategy<Value = PrefExpr> {
    let leaf = prop_oneof![
        Just(PrefExpr::Lowest {
            expr: Expr::col("a")
        }),
        Just(PrefExpr::Highest {
            expr: Expr::col("b")
        }),
        (0i64..12).prop_map(|k| PrefExpr::Around {
            expr: Expr::col("a"),
            target: Box::new(Expr::lit(k)),
        }),
        (0i64..6, 6i64..12).prop_map(|(l, u)| PrefExpr::Between {
            expr: Expr::col("b"),
            low: Box::new(Expr::lit(l)),
            up: Box::new(Expr::lit(u)),
        }),
        proptest::collection::vec(0i64..8, 1..3).prop_map(|vs| PrefExpr::Pos {
            expr: Expr::col("c"),
            values: vs.into_iter().map(Value::Int).collect(),
        }),
        Just(PrefExpr::Neg {
            expr: Expr::col("c"),
            values: vec![Value::Int(3)],
        }),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(PrefExpr::Pareto),
            proptest::collection::vec(inner, 2..3).prop_map(PrefExpr::Prioritized),
        ]
    })
}

/// One random DML statement. Delete/update targets pick from the rows
/// still alive at application time (modulo the live count), so every
/// generated statement is effective once the table is non-empty.
#[derive(Debug, Clone)]
enum Op {
    Insert { a: i64, b: i64, c: Option<i64> },
    Delete { pick: usize },
    Update { pick: usize, a: i64, b: i64 },
}

fn arb_cell() -> impl Strategy<Value = (i64, i64, Option<i64>)> {
    (
        0i64..12,
        0i64..12,
        prop_oneof![(0i64..8).prop_map(Some), Just(None)],
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            arb_cell().prop_map(|(a, b, c)| Op::Insert { a, b, c }),
            (0usize..64).prop_map(|pick| Op::Delete { pick }),
            (0usize..64, 0i64..12, 0i64..12).prop_map(|(pick, a, b)| Op::Update { pick, a, b }),
        ],
        1..16,
    )
}

// ------------------------------------------------------------ harness

fn sql_cell(c: &Option<i64>) -> String {
    c.map(|v| v.to_string()).unwrap_or_else(|| "NULL".into())
}

fn setup(s: &mut Session, seed: &[(i64, i64, Option<i64>)]) {
    s.execute("CREATE TABLE r (id INTEGER, a INTEGER, b INTEGER, c INTEGER)")
        .unwrap();
    for (i, (a, b, c)) in seed.iter().enumerate() {
        s.execute(&format!(
            "INSERT INTO r VALUES ({i}, {a}, {b}, {})",
            sql_cell(c)
        ))
        .unwrap();
    }
}

/// The view's current content through the engine's by-name access path.
fn read_view(s: &mut Session) -> ResultSet {
    s.set_mode(ExecutionMode::Rewrite);
    s.query("SELECT * FROM v").unwrap()
}

/// Assert the cached serving path agrees with every recompute flavour.
fn check(inc: &mut Session, cold: &mut Session, pref: &PrefExpr) {
    let sql = format!("SELECT id, a, b, c FROM r PREFERRING {pref}");
    inc.set_mode(ExecutionMode::native());
    let served = inc.query(&sql).unwrap();
    assert_eq!(
        served.view_activity().and_then(|v| v.served_by.as_deref()),
        Some("v"),
        "query must be served from the materialized view: {sql}"
    );
    cold.set_mode(ExecutionMode::native());
    let recomputed = cold.query(&sql).unwrap();
    assert!(
        recomputed.view_activity().is_none(),
        "cold session has no view to serve from"
    );
    assert_eq!(
        served, recomputed,
        "cache hit diverged from native recompute: {sql}"
    );
    cold.set_mode(ExecutionMode::Rewrite);
    let oracle = cold.query(&sql).unwrap();
    assert_eq!(
        served, oracle,
        "cache hit diverged from rewrite path: {sql}"
    );
}

/// Apply one op to both sessions, returning the SQL that was run.
fn apply(op: &Op, live: &mut Vec<i64>, next_id: &mut i64, sessions: &mut [&mut Session]) {
    let sql = match op {
        Op::Insert { a, b, c } => {
            let id = *next_id;
            *next_id += 1;
            live.push(id);
            format!("INSERT INTO r VALUES ({id}, {a}, {b}, {})", sql_cell(c))
        }
        Op::Delete { pick } => {
            if live.is_empty() {
                return;
            }
            let id = live.remove(pick % live.len());
            format!("DELETE FROM r WHERE id = {id}")
        }
        Op::Update { pick, a, b } => {
            if live.is_empty() {
                return;
            }
            let id = live[pick % live.len()];
            format!("UPDATE r SET a = {a}, b = {b} WHERE id = {id}")
        }
    };
    for s in sessions {
        s.set_mode(ExecutionMode::Rewrite);
        s.execute(&sql).unwrap();
    }
}

/// Run one full scenario: seed both cores, create the view on one,
/// verify after the build, after every DML statement, and after a final
/// REFRESH (incremental state ≡ from-scratch rebuild).
fn run_scenario(
    pref: &PrefExpr,
    seed: &[(i64, i64, Option<i64>)],
    ops: &[Op],
    threads: usize,
    window: Option<usize>,
) {
    let mut inc = Session::new();
    let mut cold = Session::new();
    for s in [&mut inc, &mut cold] {
        s.set_threads(threads);
        s.set_window_bytes(window);
        setup(s, seed);
    }
    inc.execute(&format!(
        "CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT * FROM r PREFERRING {pref}"
    ))
    .unwrap();
    check(&mut inc, &mut cold, pref);

    let mut live: Vec<i64> = (0..seed.len() as i64).collect();
    let mut next_id = seed.len() as i64;
    for op in ops {
        apply(op, &mut live, &mut next_id, &mut [&mut inc, &mut cold]);
        check(&mut inc, &mut cold, pref);
    }

    let incremental = read_view(&mut inc);
    inc.execute("REFRESH MATERIALIZED PREFERENCE VIEW v")
        .unwrap();
    assert_eq!(
        incremental,
        read_view(&mut inc),
        "incrementally maintained content must equal a from-scratch rebuild"
    );
}

// ------------------------------------------------------------- proofs

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layer 1: random DML against random preference trees, checked
    /// after every statement under the full knob matrix.
    #[test]
    fn incremental_view_equals_full_recompute(
        pref in arb_pref(),
        seed in proptest::collection::vec(arb_cell(), 0..12),
        ops in arb_ops(),
    ) {
        for threads in [1usize, 8] {
            for window in [None, Some(4096usize)] {
                run_scenario(&pref, &seed, &ops, threads, window);
            }
        }
    }
}

/// Layer 2: deleting a winner promotes exactly the rows it exclusively
/// dominated — pinned deterministically so the scenario is always
/// exercised regardless of what the random sweeps draw.
#[test]
fn delete_of_winner_promotes_dominated_rows() {
    let pref = PrefExpr::Pareto(vec![
        PrefExpr::Lowest {
            expr: Expr::col("a"),
        },
        PrefExpr::Lowest {
            expr: Expr::col("b"),
        },
    ]);
    // (0: 1,1) dominates (1: 2,3) and (2: 3,2); (3: 0,9) and (4: 9,0)
    // are incomparable winners.
    let seed = [
        (1, 1, None),
        (2, 3, None),
        (3, 2, None),
        (0, 9, None),
        (9, 0, None),
    ];
    let ops = [Op::Delete { pick: 0 }]; // removes id 0, the (1,1) winner
    run_scenario(&pref, &seed, &ops, 1, None);

    // And visibly: the promotion really happened.
    let mut s = Session::new();
    setup(&mut s, &seed);
    s.execute(&format!(
        "CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT * FROM r PREFERRING {pref}"
    ))
    .unwrap();
    assert_eq!(
        s.query("SELECT id FROM v").unwrap().column_as_ints(0),
        vec![0, 3, 4]
    );
    s.execute("DELETE FROM r WHERE id = 0").unwrap();
    assert_eq!(
        s.query("SELECT id FROM v").unwrap().column_as_ints(0),
        vec![1, 2, 3, 4],
        "rows dominated only by the deleted winner are promoted"
    );
}

/// Layer 3: concurrent writers and cache-served readers over one shared
/// core. Statement-level isolation makes each DML + its view maintenance
/// atomic, so readers always see a consistent winner set, and the final
/// incremental state equals both a cold recompute and a REFRESH rebuild.
#[test]
fn concurrent_dml_keeps_view_equivalent() {
    let pref = "LOWEST(a) AND HIGHEST(b)";
    let core = EngineCore::shared();
    let mut admin = Session::with_core(Arc::clone(&core));
    admin
        .execute("CREATE TABLE r (id INTEGER, a INTEGER, b INTEGER, c INTEGER)")
        .unwrap();
    for i in 0..32 {
        admin
            .execute(&format!(
                "INSERT INTO r VALUES ({i}, {}, {}, {})",
                i % 7,
                (i * 5) % 11,
                i % 3
            ))
            .unwrap();
    }
    admin
        .execute(&format!(
            "CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT * FROM r PREFERRING {pref}"
        ))
        .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                let mut s = Session::with_core(core);
                // Each writer owns a private id range, so its deletes and
                // updates always target rows it inserted itself.
                let base = 1000 * (w + 1);
                for i in 0..40 {
                    let id = base + i;
                    s.execute(&format!(
                        "INSERT INTO r VALUES ({id}, {}, {}, NULL)",
                        (w * 3 + i) % 9,
                        (w + i * 7) % 13
                    ))
                    .unwrap();
                    match i % 3 {
                        0 => {
                            s.execute(&format!("DELETE FROM r WHERE id = {id}"))
                                .unwrap();
                        }
                        1 => {
                            s.execute(&format!(
                                "UPDATE r SET a = {}, b = {} WHERE id = {id}",
                                (i + 1) % 9,
                                (w + i) % 13
                            ))
                            .unwrap();
                        }
                        _ => {}
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let core = Arc::clone(&core);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut s = Session::with_core(core);
                s.set_mode(ExecutionMode::native());
                let sql = format!("SELECT id FROM r PREFERRING {pref}");
                let mut hits = 0u32;
                while !done.load(Ordering::Relaxed) {
                    let rs = s.query(&sql).unwrap();
                    if rs
                        .view_activity()
                        .is_some_and(|v| v.served_by.as_deref() == Some("v"))
                    {
                        hits += 1;
                    }
                }
                assert!(hits > 0, "readers were never served from the view");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Quiesced: cached content ≡ cold recompute ≡ rebuilt-from-scratch.
    let sql = format!("SELECT id, a, b, c FROM r PREFERRING {pref}");
    admin.set_mode(ExecutionMode::native());
    let served = admin.query(&sql).unwrap();
    assert_eq!(
        served.view_activity().and_then(|v| v.served_by.as_deref()),
        Some("v")
    );
    admin.set_mode(ExecutionMode::Rewrite);
    assert_eq!(served, admin.query(&sql).unwrap());
    let incremental = read_view(&mut admin);
    admin
        .execute("REFRESH MATERIALIZED PREFERENCE VIEW v")
        .unwrap();
    assert_eq!(incremental, read_view(&mut admin));
}
