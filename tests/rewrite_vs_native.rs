//! Differential testing: the rewrite path (NOT EXISTS on the host engine)
//! and the native path (explicit skyline algorithms in the preference
//! layer) must return identical result sets for every query and workload.
//! This is the strongest correctness evidence for the paper's central
//! claim that the rewrite implements the BMO model faithfully.

use prefsql::{ExecutionMode, PrefSqlConnection, SkylineAlgo};
use prefsql_workload::{bks01, cars, computers, cosima, hotels, oldtimer, trips};

/// Run `sql` in rewrite mode and all four native modes (including the
/// cost-based auto selection); assert identical row multisets
/// (order-insensitive unless the query orders).
fn assert_all_modes_agree(table: prefsql::storage::Table, sql: &str) {
    let mut results = Vec::new();
    for mode in [
        ExecutionMode::Rewrite,
        ExecutionMode::Native(SkylineAlgo::Naive),
        ExecutionMode::Native(SkylineAlgo::Bnl),
        ExecutionMode::Native(SkylineAlgo::Sfs),
        ExecutionMode::Native(SkylineAlgo::Auto),
    ] {
        let mut conn = PrefSqlConnection::new();
        conn.engine_mut()
            .catalog_mut()
            .create_table(table.clone())
            .unwrap();
        conn.set_mode(mode);
        let rs = conn
            .query(sql)
            .unwrap_or_else(|e| panic!("{mode:?} failed on {sql}: {e}"));
        let mut rows: Vec<String> = rs.rows().iter().map(|r| r.to_string()).collect();
        rows.sort();
        results.push((mode, rows));
    }
    let (ref base_mode, ref expected) = results[0];
    for (mode, rows) in &results[1..] {
        assert_eq!(
            rows, expected,
            "result mismatch between {base_mode:?} and {mode:?} on: {sql}"
        );
    }
}

#[test]
fn oldtimer_query_agrees() {
    assert_all_modes_agree(oldtimer::table(), oldtimer::QUERY);
}

#[test]
fn paper_cars_agrees() {
    assert_all_modes_agree(
        cars::paper_fixture(),
        "SELECT identifier, make FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'",
    );
}

#[test]
fn opel_flagship_agrees() {
    assert_all_modes_agree(cars::market(300, 41), cars::OPEL_QUERY);
}

#[test]
fn computers_pareto_and_cascade_agree() {
    let t = computers::table(250, 42);
    assert_all_modes_agree(t.clone(), computers::PARETO_QUERY);
    assert_all_modes_agree(t, computers::CASCADE_QUERY);
}

#[test]
fn but_only_trips_agrees() {
    assert_all_modes_agree(trips::table(250, 43), trips::BUT_ONLY_QUERY);
}

#[test]
fn grouping_agrees() {
    assert_all_modes_agree(
        hotels::table(200, 44),
        "SELECT id, location, price FROM hotels PREFERRING LOWEST(price) GROUPING location",
    );
}

#[test]
fn neg_preference_agrees() {
    assert_all_modes_agree(hotels::table(150, 45), hotels::NEG_QUERY);
}

#[test]
fn skyline_distributions_agree() {
    for dist in bks01::Distribution::ALL {
        for d in [2, 4] {
            assert_all_modes_agree(bks01::table(200, d, dist, 46), &bks01::skyline_query(d));
        }
    }
}

#[test]
fn cosima_query_agrees() {
    assert_all_modes_agree(cosima::snapshot(300, 47).offers, cosima::COMPARISON_QUERY);
}

#[test]
fn explicit_preference_agrees() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE shirts (id INTEGER, color VARCHAR, price INTEGER)")
        .unwrap();
    conn.execute(
        "INSERT INTO shirts VALUES (1, 'red', 10), (2, 'blue', 5), (3, 'grey', 3), \
         (4, 'pink', 9), (5, 'red', 20)",
    )
    .unwrap();
    // Re-extract the table to share across modes.
    let table = conn.engine().catalog().table("shirts").unwrap().clone();
    assert_all_modes_agree(
        table,
        "SELECT id FROM shirts PREFERRING \
         color EXPLICIT ('red' BETTER 'blue', 'blue' BETTER 'grey') AND LOWEST(price)",
    );
}

#[test]
fn quality_functions_in_select_agree() {
    assert_all_modes_agree(
        trips::table(150, 48),
        "SELECT id, duration, DISTANCE(duration), TOP(duration) FROM trips \
         PREFERRING duration AROUND 12",
    );
}

#[test]
fn nulls_agree_across_modes() {
    let mut conn = PrefSqlConnection::new();
    conn.execute("CREATE TABLE t (id INTEGER, x INTEGER, c VARCHAR)")
        .unwrap();
    conn.execute(
        "INSERT INTO t VALUES (1, 5, 'red'), (2, NULL, 'red'), (3, 9, NULL), (4, 5, 'blue')",
    )
    .unwrap();
    let table = conn.engine().catalog().table("t").unwrap().clone();
    assert_all_modes_agree(
        table.clone(),
        "SELECT id FROM t PREFERRING LOWEST(x) AND c IN ('red')",
    );
    assert_all_modes_agree(
        table,
        "SELECT id FROM t PREFERRING LOWEST(x) CASCADE c = 'red'",
    );
}

mod random_query_sweep {
    use super::assert_all_modes_agree;
    use prefsql::storage::Table;
    use prefsql::types::{tuple, Column, DataType, Schema, Tuple, Value};
    use proptest::prelude::*;

    /// A random table over a fixed 4-column schema (with NULLs mixed in).
    fn arb_table() -> impl Strategy<Value = Table> {
        let row = (
            0i64..20,
            0i64..20,
            prop_oneof![
                Just(Some("red")),
                Just(Some("blue")),
                Just(Some("green")),
                Just(None)
            ],
            prop_oneof![(0i64..15).prop_map(Some), Just(None)],
        );
        proptest::collection::vec(row, 1..35).prop_map(|rows| {
            let schema = Schema::new(vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::Str),
                Column::new("d", DataType::Int),
            ])
            .expect("static schema");
            let mut t = Table::new("r", schema);
            for (i, (a, b, c, d)) in rows.into_iter().enumerate() {
                let c = c.map(Value::str).unwrap_or(Value::Null);
                let d = d.map(Value::Int).unwrap_or(Value::Null);
                t.insert(Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(a),
                    Value::Int(b),
                    c,
                    d,
                ]))
                .expect("row fits schema");
            }
            let _ = tuple![0]; // keep the macro import used
            t
        })
    }

    /// A random preference term as SQL text.
    fn arb_pref_sql() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("LOWEST(a)".to_string()),
            Just("HIGHEST(b)".to_string()),
            Just("LOWEST(d)".to_string()),
            (0i64..20).prop_map(|k| format!("a AROUND {k}")),
            (0i64..10, 10i64..20).prop_map(|(l, u)| format!("b BETWEEN {l}, {u}")),
            Just("c IN ('red', 'blue')".to_string()),
            Just("c <> 'green'".to_string()),
            Just("c = 'red' ELSE c = 'blue'".to_string()),
            Just("c = 'red' ELSE c <> 'blue'".to_string()),
            Just("c EXPLICIT ('red' BETTER 'blue', 'blue' BETTER 'green')".to_string()),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 2..4)
                    .prop_map(|parts| format!("({})", parts.join(" AND "))),
                proptest::collection::vec(inner, 2..3)
                    .prop_map(|parts| format!("({})", parts.join(" CASCADE "))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any random preference over any random table: the rewrite and
        /// all three native algorithms agree.
        #[test]
        fn all_modes_agree_on_random_queries(table in arb_table(), pref in arb_pref_sql()) {
            let sql = format!("SELECT id FROM r PREFERRING {pref}");
            assert_all_modes_agree(table, &sql);
        }

        /// Same with a random GROUPING attribute.
        #[test]
        fn all_modes_agree_with_grouping(table in arb_table(), pref in arb_pref_sql()) {
            let sql = format!("SELECT id FROM r PREFERRING {pref} GROUPING c");
            assert_all_modes_agree(table, &sql);
        }
    }
}

#[test]
fn randomized_differential_sweep() {
    // Many random workloads × a mix of preference shapes; any divergence
    // between the rewrite and the native algorithms fails loudly.
    let queries = [
        "SELECT id FROM car PREFERRING LOWEST(price) AND LOWEST(mileage)",
        "SELECT id FROM car PREFERRING HIGHEST(power) CASCADE price AROUND 40000",
        "SELECT id FROM car PREFERRING category = 'roadster' ELSE category <> 'passenger'",
        "SELECT id FROM car PREFERRING price BETWEEN 20000, 30000 AND LOWEST(mileage)",
        "SELECT id FROM car PREFERRING (LOWEST(price) AND HIGHEST(power)) CASCADE \
         color IN ('red', 'black') CASCADE LOWEST(mileage)",
        "SELECT id FROM car PREFERRING color IN ('red') GROUPING make",
        "SELECT id FROM car WHERE price < 60000 PREFERRING HIGHEST(power) \
         BUT ONLY DISTANCE(power) <= 50",
    ];
    for seed in 0..5 {
        let t = cars::market(120, 100 + seed);
        for q in &queries {
            assert_all_modes_agree(t.clone(), q);
        }
    }
}
