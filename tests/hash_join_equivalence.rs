//! Differential evidence for the Grace hash join.
//!
//! The hash join's contract is *byte-identical rows and order* with the
//! nested-loop join it replaces: left-major, right-minor, exactly the
//! sequence the NLJ emits. Every test here renders both results with
//! `ResultSet::to_string()` and diffs the bytes, so column order, row
//! order, and value formatting are all part of the assertion:
//!
//! 1. A fixed fact ⋈ dim sweep (pure equi, multi-key, mixed
//!    equi + residual) across batch sizes 1/7/1024 and window budgets
//!    off / 64 KiB / 4 KiB — the 4 KiB runs overflow into the Grace
//!    partitioned path.
//! 2. Fallback regressions: non-equi and subquery ON conditions must
//!    plan as nested-loop (never panic, never drop a conjunct), and
//!    EXPLAIN must say so.
//! 3. A Grace acceptance run: a build side far over a 64 KiB window
//!    returns bytes identical to the unbounded run, reports
//!    `runs_written >= 2` through `ResultSet::spill_metrics()`, and
//!    leaves no spill directory behind.
//! 4. A property test over random equi-join schemas: random key
//!    arities, domains small enough to force duplicate- and NULL-key
//!    collisions, hash (bounded and unbounded) vs nested-loop.
//! 5. The nested-loop rematerialization fix: a correlated EXISTS that
//!    re-opens a cross join must not re-scan the join's sides once per
//!    outer row.

use prefsql::engine::physical::{build, drain_batched};
use prefsql::parser::ast::Statement;
use prefsql::parser::parse_statement;
use prefsql::storage::Table;
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::PrefSqlConnection;
use proptest::prelude::*;

// ------------------------------------------------------------ fixtures

/// A tiny deterministic generator so fixtures need no `rand`.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// `fact(id, k, g, v)` — `k` is the join key over a small domain (to
/// force duplicate matches) with NULLs mixed in; `g` is a second key
/// column; `v` feeds residual predicates.
fn fact_table(rows: usize, key_domain: u64, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("k", DataType::Int),
        Column::new("g", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new("fact", schema);
    let mut s = seed;
    for i in 0..rows {
        let k = match lcg(&mut s) % 10 {
            0 => Value::Null,
            _ => Value::Int((lcg(&mut s) % key_domain) as i64),
        };
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            k,
            Value::Int((lcg(&mut s) % 4) as i64),
            Value::Int((lcg(&mut s) % 100) as i64),
        ]))
        .expect("row fits schema");
    }
    t
}

/// `dim(k, g, w, name)` — keys over the same domain as `fact.k`, again
/// with NULLs (which must never match anything).
fn dim_table(rows: usize, key_domain: u64, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("g", DataType::Int),
        Column::new("w", DataType::Int),
        Column::new("name", DataType::Str),
    ])
    .expect("static schema");
    let mut t = Table::new("dim", schema);
    let mut s = seed;
    for i in 0..rows {
        let k = match lcg(&mut s) % 12 {
            0 => Value::Null,
            _ => Value::Int((lcg(&mut s) % key_domain) as i64),
        };
        t.insert(Tuple::new(vec![
            k,
            Value::Int((lcg(&mut s) % 4) as i64),
            Value::Int((lcg(&mut s) % 100) as i64),
            Value::Str(format!("d{i}")),
        ]))
        .expect("row fits schema");
    }
    t
}

fn explain(conn: &mut PrefSqlConnection, sql: &str) -> String {
    match conn.execute(sql).expect("explain executes") {
        prefsql::QueryResult::Explain(text) => text,
        other => panic!("EXPLAIN produced {other:?}"),
    }
}

fn conn_with(tables: Vec<Table>) -> PrefSqlConnection {
    let mut conn = PrefSqlConnection::new();
    for t in tables {
        conn.engine_mut()
            .catalog_mut()
            .create_table(t)
            .expect("fresh catalog");
    }
    conn
}

/// The three join shapes under test: pure equi, multi-key equi, and an
/// equi key with a non-equi residual that must survive the split.
const JOIN_QUERIES: [&str; 3] = [
    "SELECT f.id, f.v, d.name FROM fact f JOIN dim d ON f.k = d.k",
    "SELECT f.id, d.name FROM fact f JOIN dim d ON f.k = d.k AND f.g = d.g",
    "SELECT f.id, f.v, d.w, d.name FROM fact f JOIN dim d ON f.k = d.k AND f.v > d.w",
];

// ------------------------------------------------- the documented contract

/// Hash join ≡ nested-loop join, bytes and order, across window budgets
/// (off, generous, tight enough that every run takes the Grace path)
/// and all three join shapes. The baseline is the nested-loop join with
/// the window off — the executor every prior release shipped.
#[test]
fn hash_join_matches_nested_loop_bytes_and_order() {
    let fact = fact_table(600, 23, 7);
    let dim = dim_table(80, 23, 11);

    let mut nlj = conn_with(vec![fact.clone(), dim.clone()]);
    nlj.engine_mut().set_use_hash_join(false);

    for sql in JOIN_QUERIES {
        let expected = nlj.query(sql).expect("nested-loop run").to_string();
        for window in [None, Some(64 * 1024), Some(4096)] {
            let mut hash = conn_with(vec![fact.clone(), dim.clone()]);
            hash.set_window_bytes(window);
            let got = hash.query(sql).expect("hash run").to_string();
            assert_eq!(
                got, expected,
                "hash join diverged from nested-loop: window={window:?} sql={sql}"
            );
        }
    }
}

/// The same contract at the operator level, driven at batch sizes the
/// session never uses: 1 (tuple-at-a-time), 7 (odd, never aligned with
/// internal buffers), and 1024 (the default).
#[test]
fn hash_join_matches_nested_loop_across_batch_sizes() {
    let fact = fact_table(400, 17, 3);
    let dim = dim_table(60, 17, 5);

    let drained = |conn: &PrefSqlConnection, sql: &str, batch: usize| -> Vec<Tuple> {
        let stmt = parse_statement(sql).expect("parseable");
        let Statement::Select(q) = stmt else {
            panic!("test query is a SELECT");
        };
        conn.engine()
            .with_read_ctx(|ctx| {
                let plan = ctx.plan_for(&q)?;
                let mut op = build(ctx, plan.root(), &[]);
                op.open()?;
                let rows = drain_batched(op.as_mut(), batch)?;
                op.close();
                Ok(rows)
            })
            .expect("operator drive")
    };

    let mut nlj = conn_with(vec![fact.clone(), dim.clone()]);
    nlj.engine_mut().set_use_hash_join(false);
    for sql in JOIN_QUERIES {
        let expected = drained(&nlj, sql, 1024);
        for window in [None, Some(4096)] {
            let mut hash = conn_with(vec![fact.clone(), dim.clone()]);
            hash.set_window_bytes(window);
            for batch in [1usize, 7, 1024] {
                let got = drained(&hash, sql, batch);
                assert_eq!(
                    got, expected,
                    "operator drive diverged: window={window:?} batch={batch} sql={sql}"
                );
            }
        }
    }
}

// ----------------------------------------------------------- fallbacks

/// Mixed conditions keep the non-equi conjunct as a residual on the
/// hash join — EXPLAIN must show both the key and the residual, and the
/// residual must actually filter (the equi-only result is strictly
/// larger).
#[test]
fn mixed_condition_keeps_residual_and_filters() {
    let mut conn = conn_with(vec![fact_table(200, 11, 1), dim_table(40, 11, 2)]);

    let plan = explain(
        &mut conn,
        "EXPLAIN SELECT f.id FROM fact f JOIN dim d ON f.k = d.k AND f.v > d.w",
    );
    assert!(plan.contains("join=hash"), "not a hash join:\n{plan}");
    assert!(plan.contains("residual="), "residual dropped:\n{plan}");

    let with_residual = conn
        .query("SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k AND f.v > d.w")
        .expect("mixed join")
        .to_string();
    let equi_only = conn
        .query("SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k")
        .expect("equi join")
        .to_string();
    assert_ne!(
        with_residual, equi_only,
        "residual predicate filtered nothing — the conjunct was dropped"
    );
}

/// Conditions the hash join cannot handle fall back to the nested-loop
/// join cleanly: pure non-equi, and ON conditions containing a
/// subquery. Both must execute (no panic) and EXPLAIN as nested-loop.
#[test]
fn non_equi_and_subquery_conditions_fall_back_to_nested_loop() {
    let mut conn = conn_with(vec![fact_table(50, 7, 9), dim_table(20, 7, 4)]);

    for sql in [
        "SELECT f.id FROM fact f JOIN dim d ON f.v > d.w",
        "SELECT f.id FROM fact f JOIN dim d \
         ON f.k = d.k AND EXISTS (SELECT 1 FROM dim x WHERE x.w = f.v)",
    ] {
        let plan = explain(&mut conn, &format!("EXPLAIN {sql}"));
        assert!(
            plan.contains("Nested-loop join"),
            "expected nested-loop fallback for {sql}:\n{plan}"
        );
        assert!(!plan.contains("join=hash"), "unexpected hash join:\n{plan}");
        conn.query(sql).expect("fallback executes");
    }
}

// ------------------------------------------------------ Grace acceptance

/// A build side far over a 64 KiB window forces the Grace partitioned
/// path: the result must be byte-identical to the unbounded run, the
/// metrics must prove real partitioning (≥ 2 overflow runs), and the
/// spill directory must be gone once the result is materialized.
#[test]
fn grace_overflow_is_byte_identical_and_reports_runs() {
    let fact = fact_table(8_000, 997, 21);
    let dim = dim_table(4_000, 997, 22);
    let sql = "SELECT f.id, d.name FROM fact f JOIN dim d ON f.k = d.k";

    let mut unbounded = conn_with(vec![fact.clone(), dim.clone()]);
    // Explicit: a PREFSQL_WINDOW ceiling in the environment (as the CI
    // rerun sets) must not turn the baseline into a spilling run.
    unbounded.set_window_bytes(None);
    let expected = unbounded.query(sql).expect("unbounded run");
    assert!(
        expected.spill_metrics().is_none(),
        "unbounded run must not spill"
    );

    let mut bounded = conn_with(vec![fact, dim]);
    bounded.set_window_bytes(Some(64 * 1024));
    let rs = bounded.query(sql).expect("bounded run");
    assert_eq!(
        rs.to_string(),
        expected.to_string(),
        "window budget changed the join result"
    );

    let m = rs.spill_metrics().expect("bounded run reports metrics");
    assert!(m.runs_written >= 2, "{m:?}");
    assert!(m.bytes_spilled > 64 * 1024, "{m:?}");
    assert!(m.passes >= 1, "{m:?}");
    let dir = m.spill_dir.as_deref().expect("metrics name the spill dir");
    assert!(!dir.exists(), "spill dir survived the query: {dir:?}");
}

// ----------------------------------------------- NLJ rematerialization

/// The nested-loop join materializes each side once per statement, not
/// once per `open`: a correlated EXISTS over a cross join re-opens the
/// join for every outer row, and before the fix re-scanned the inner
/// tables every time. The scan counters pin the fix.
#[test]
fn nested_loop_sides_materialize_once_per_statement() {
    let mut conn = conn_with(vec![fact_table(30, 5, 13), dim_table(50, 5, 14)]);
    let _ = conn.engine().take_stats();
    conn.query(
        "SELECT f1.id FROM fact f1 \
         WHERE EXISTS (SELECT 1 FROM fact f2, dim d WHERE f2.v = f1.v)",
    )
    .expect("correlated exists over cross join");
    let stats = conn.engine().take_stats();
    // One outer scan (30), the streaming left scan re-opened per probe
    // (30 × 30 — scans lend the table slice, re-opening is free), and
    // exactly ONE materialization of the 50-row right side. The old
    // per-open behaviour re-materialized the right side on every probe,
    // pushing the count past 30 + 900 + 30 × 50 = 2430.
    assert!(
        stats.rows_scanned <= 30 + 30 * 30 + 50,
        "right join side was re-materialized per outer row: {stats:?}"
    );
}

// ------------------------------------------------------------ proptest

/// A random table over one or two join-key columns plus an id, with
/// keys drawn from a domain small enough to force heavy duplication and
/// NULLs mixed in.
fn arb_side(max_rows: usize) -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![(0i64..6).prop_map(Some), Just(None)],
            prop_oneof![(0i64..4).prop_map(Some), Just(None)],
            0i64..100,
        ),
        0..max_rows,
    )
}

fn side_table(name: &str, rows: &[(Option<i64>, Option<i64>, i64)]) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("k1", DataType::Int),
        Column::new("k2", DataType::Int),
        Column::new("p", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new(name, schema);
    for (i, (k1, k2, p)) in rows.iter().enumerate() {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            k1.map(Value::Int).unwrap_or(Value::Null),
            k2.map(Value::Int).unwrap_or(Value::Null),
            Value::Int(*p),
        ]))
        .expect("row fits schema");
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random equi-join schemas: one or two key columns, optional
    /// residual, random (duplicate- and NULL-heavy) contents on both
    /// sides. Hash — unbounded and under a window small enough to
    /// spill — must render byte-identically to nested-loop.
    #[test]
    fn random_equi_joins_match_nested_loop(
        left in arb_side(30),
        right in arb_side(30),
        two_keys in any::<bool>(),
        residual in any::<bool>(),
    ) {
        let mut on = String::from("l.k1 = r.k1");
        if two_keys {
            on.push_str(" AND l.k2 = r.k2");
        }
        if residual {
            on.push_str(" AND l.p > r.p");
        }
        let sql = format!("SELECT l.id, r.id, l.p, r.p FROM lhs l JOIN rhs r ON {on}");
        let tables = || vec![side_table("lhs", &left), side_table("rhs", &right)];

        let mut nlj = conn_with(tables());
        nlj.engine_mut().set_use_hash_join(false);
        let expected = nlj.query(&sql).expect("nested-loop run").to_string();

        for window in [None, Some(4096)] {
            let mut hash = conn_with(tables());
            hash.set_window_bytes(window);
            let got = hash.query(&sql).expect("hash run").to_string();
            prop_assert_eq!(&got, &expected, "window={:?} sql={}", window, sql);
        }
    }
}
