#!/usr/bin/env bash
# Live-server smoke test: boot prefsql-server on an ephemeral port,
# replay ci/smoke_session.txt through prefsql-client, and require the
# transcript to match ci/smoke_session.expected byte for byte.
# The client itself exits non-zero if any request answered ERROR.
set -euo pipefail
cd "$(dirname "$0")/.."

server=target/release/prefsql-server
client=target/release/prefsql-client
if [ ! -x "$server" ] || [ ! -x "$client" ]; then
    cargo build --release -p prefsql-server
fi

log=$(mktemp)
"$server" 127.0.0.1:0 >"$log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^prefsql-server listening on //p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "server never reported its listening address" >&2
    cat "$log" >&2
    exit 1
fi

got=$(mktemp)
"$client" "$addr" <ci/smoke_session.txt >"$got"
diff -u ci/smoke_session.expected "$got"
echo "smoke session OK against $addr"
