#!/usr/bin/env bash
# Live-server smoke test: boot prefsql-server on an ephemeral port,
# replay ci/smoke_session.txt through prefsql-client, and require the
# transcript to match ci/smoke_session.expected byte for byte.
# The client itself exits non-zero if any request answered ERROR.
set -euo pipefail
cd "$(dirname "$0")/.."

server=target/release/prefsql-server
client=target/release/prefsql-client
if [ ! -x "$server" ] || [ ! -x "$client" ]; then
    cargo build --release -p prefsql-server
fi

log=$(mktemp)
"$server" 127.0.0.1:0 >"$log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^prefsql-server listening on //p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "server never reported its listening address" >&2
    cat "$log" >&2
    exit 1
fi

got=$(mktemp)
"$client" "$addr" <ci/smoke_session.txt >"$got"
diff -u ci/smoke_session.expected "$got"
echo "smoke session OK against $addr"

# ---- observability leg: METRICS verb + slow-query log -----------------
# Counter values and timings are nondeterministic, so this leg greps for
# structure instead of diffing a golden transcript. A 0 ms threshold
# makes every statement "slow".
slow_log=$(mktemp)
log2=$(mktemp)
"$server" 127.0.0.1:0 --slow-query-ms 0 >"$log2" 2>"$slow_log" &
slow_pid=$!
trap 'kill "$server_pid" "$slow_pid" 2>/dev/null || true' EXIT

addr2=""
for _ in $(seq 1 100); do
    addr2=$(sed -n 's/^prefsql-server listening on //p' "$log2")
    [ -n "$addr2" ] && break
    sleep 0.1
done
if [ -z "$addr2" ]; then
    echo "slow-query server never reported its listening address" >&2
    cat "$log2" >&2
    exit 1
fi

metrics_out=$(mktemp)
"$client" "$addr2" >"$metrics_out" <<'EOF'
CREATE TABLE trips (dest VARCHAR, duration INTEGER)
INSERT INTO trips VALUES ('Rome', 10), ('Oslo', 14), ('Pisa', 21)
\mode native
SELECT dest FROM trips PREFERRING duration AROUND 14
METRICS
\q
EOF

# The registry saw the statements and ships key<TAB>value payload lines.
total=$(sed -n 's/^| statements\.total\t//p' "$metrics_out")
if [ -z "$total" ] || [ "$total" -lt 3 ]; then
    echo "METRICS reply missing or implausible statements.total: '$total'" >&2
    cat "$metrics_out" >&2
    exit 1
fi
grep -q '^| exec\.dominance_tests	[1-9]' "$metrics_out" || {
    echo "METRICS reply missing nonzero exec.dominance_tests" >&2
    cat "$metrics_out" >&2
    exit 1
}

# Every statement crossed the 0 ms bar and was logged with its plan.
grep -q '^\[slow query\] .* ms: SELECT dest FROM trips' "$slow_log" || {
    echo "slow-query log missing the SELECT" >&2
    cat "$slow_log" >&2
    exit 1
}
grep -q 'actual rows=' "$slow_log" || {
    echo "slow-query log missing the analyzed plan" >&2
    cat "$slow_log" >&2
    exit 1
}
echo "METRICS + slow-query log OK against $addr2"
