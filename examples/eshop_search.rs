//! E-shop search engine (paper §4.1): the washing-machine search mask.
//!
//! Run with: `cargo run --example eshop_search`
//!
//! A web form's entries are "invisibly hard-wired" into a Preference SQL
//! query: the manufacturer choice is a hard constraint, everything else a
//! soft preference, plus a hidden *vendor preference* the e-merchant adds
//! at their discretion.

use prefsql::PrefSqlConnection;
use prefsql_workload::products;

/// What the customer typed into the search mask.
struct SearchMask {
    manufacturer: &'static str,
    width_cm: i64,
    spin_rpm: i64,
    max_power_kwh: f64,
    price_low: i64,
    price_high: i64,
}

/// Generate the Preference SQL query from the mask — "using dynamic
/// Preference SQL it is straightforward to generate the query from a given
/// user input" (§4.1).
fn query_from_mask(mask: &SearchMask, vendor_preference: Option<&str>) -> String {
    let mut q = format!(
        "SELECT id, manufacturer, width, spinspeed, powerconsumption, waterconsumption, price \
         FROM products WHERE manufacturer = '{}' \
         PREFERRING (width AROUND {} AND spinspeed AROUND {}) CASCADE \
         (powerconsumption BETWEEN 0, {} AND LOWEST(waterconsumption) \
         AND price BETWEEN {}, {})",
        mask.manufacturer,
        mask.width_cm,
        mask.spin_rpm,
        mask.max_power_kwh,
        mask.price_low,
        mask.price_high,
    );
    // The e-merchant may append preferences on hidden attributes.
    if let Some(vendor) = vendor_preference {
        q.push_str(" CASCADE ");
        q.push_str(vendor);
    }
    q
}

fn main() -> prefsql::Result<()> {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(products::table(400, 2026))
        .expect("catalog empty");

    let mask = SearchMask {
        manufacturer: "Aturi",
        width_cm: 60,
        spin_rpm: 1200,
        max_power_kwh: 0.9,
        price_low: 1500,
        price_high: 2000,
    };

    let sql = query_from_mask(&mask, None);
    println!("Generated Preference SQL:\n  {sql}\n");
    let rs = conn.query(&sql)?;
    println!("Best matches for the customer's mask:");
    println!("{rs}");

    // Same search with a vendor preference: the shop prefers to sell
    // high-margin (expensive) machines among otherwise equal results.
    let sql = query_from_mask(&mask, Some("HIGHEST(price)"));
    let rs = conn.query(&sql)?;
    println!("With the vendor preference HIGHEST(price) appended:");
    println!("{rs}");

    // Highlighting perfect attribute matches in the UI (§4.1: "the query
    // can be enhanced with quality functions").
    let rs = conn.query(
        "SELECT id, width, TOP(width), spinspeed, TOP(spinspeed) \
         FROM products WHERE manufacturer = 'Aturi' \
         PREFERRING width AROUND 60 AND spinspeed AROUND 1200",
    )?;
    println!("Perfect-match flags for result highlighting:");
    println!("{rs}");
    Ok(())
}
