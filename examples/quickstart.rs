//! Quickstart: soft constraints in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Shows the core problem the paper opens with — hard SQL constraints
//! either return nothing or flood the user — and how `PREFERRING` fixes it.

use prefsql::{PrefSqlConnection, QueryResult};

fn main() -> prefsql::Result<()> {
    let mut conn = PrefSqlConnection::new();

    conn.execute(
        "CREATE TABLE used_cars (id INTEGER, make VARCHAR, price INTEGER, mileage INTEGER)",
    )?;
    conn.execute(
        "INSERT INTO used_cars VALUES \
         (1, 'Opel',  41500,  60000), \
         (2, 'Opel',  46000,  20000), \
         (3, 'Opel',  38000, 110000), \
         (4, 'BMW',   52000,  45000), \
         (5, 'Opel',  55000,  15000)",
    )?;

    println!("A customer wants an Opel around 40000 with low mileage.\n");

    // The exact-match trap: hard constraints return nothing.
    let hard = conn.query(
        "SELECT * FROM used_cars \
         WHERE make = 'Opel' AND price = 40000 AND mileage < 30000",
    )?;
    println!("Hard WHERE (price = 40000 AND mileage < 30000):");
    println!("{hard}");
    println!("-> the classic empty result. 'Please try again with different choices'...\n");

    // The preference version: wishes, not requirements.
    let soft_sql = "SELECT * FROM used_cars WHERE make = 'Opel' \
                    PREFERRING price AROUND 40000 AND LOWEST(mileage)";
    let soft = conn.query(soft_sql)?;
    println!("PREFERRING price AROUND 40000 AND LOWEST(mileage):");
    println!("{soft}");
    println!("-> the best-possible compromises (the Pareto-optimal set), never empty.\n");

    // Answer explanation: how good is each result?
    let adorned = conn.query(
        "SELECT id, price, mileage, DISTANCE(price), TOP(mileage) \
         FROM used_cars WHERE make = 'Opel' \
         PREFERRING price AROUND 40000 AND LOWEST(mileage)",
    )?;
    println!("With quality functions (answer explanation):");
    println!("{adorned}");

    // Peek behind the curtain: the SQL the optimizer generates.
    if let Some(sql) = conn.rewritten_sql(soft_sql)? {
        println!("The Preference SQL optimizer rewrote the query into standard SQL:");
        println!("  {sql}\n");
    }
    if let QueryResult::Explain(plan) = conn.execute(&format!("EXPLAIN {soft_sql}"))? {
        println!("EXPLAIN output:\n{plan}");
    }
    Ok(())
}
