//! COSIMA-style comparison shopping (paper §4.3).
//!
//! Run with: `cargo run --example cosima_metasearch`
//!
//! Simulates the COSIMA meta-search pipeline: gather offers from several
//! e-shops into a temporary relation (the shop access dominates latency),
//! run a Preference SQL comparison query over the snapshot, and explain
//! the quality of each presented item — the "smart, speaking e-salesperson"
//! pattern, minus the avatar.

use prefsql::PrefSqlConnection;
use prefsql_workload::cosima;
use std::time::Instant;

fn main() -> prefsql::Result<()> {
    println!(
        "Contacting e-shops ({} participating)...",
        cosima::SHOPS.len()
    );
    let gather_start = Instant::now();
    let snap = cosima::snapshot(800, 99);
    // Simulated network time; the paper's 1-2s totals were dominated by it.
    std::thread::sleep(snap.shop_access / 20); // scaled down for the demo
    let simulated_gather = snap.shop_access;
    println!(
        "Gathered {} offers (simulated shop access {:?}, demo sleeps 1/20th).\n",
        snap.offers.len(),
        simulated_gather
    );

    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(snap.offers)
        .expect("catalog empty");

    // The comparison-shopping preference: cheap AND fast, then well-rated.
    let t0 = Instant::now();
    let rs = conn.query(
        "SELECT shop, title, price, shipping_days, rating FROM offers \
         PREFERRING (LOWEST(price) AND LOWEST(shipping_days)) CASCADE HIGHEST(rating) \
         ORDER BY price",
    )?;
    let pref_time = t0.elapsed();
    println!(
        "Pareto-optimal offers ({} of 800, preference search took {pref_time:?}):",
        rs.len()
    );
    println!("{rs}");
    println!(
        "Preference search overhead vs shop access: {:.1}%\n",
        100.0 * pref_time.as_secs_f64() / (gather_start.elapsed() + simulated_gather).as_secs_f64()
    );

    // The sales-psychology explanation COSIMA would speak aloud.
    let adorned = conn.query(
        "SELECT shop, price, TOP(price), shipping_days, TOP(shipping_days) FROM offers \
         PREFERRING LOWEST(price) AND LOWEST(shipping_days)",
    )?;
    for row in adorned.rows().iter().take(5) {
        let shop = &row[0];
        let price = &row[1];
        let cheapest = row[2].as_bool().unwrap_or(false);
        let fast = row[4].as_bool().unwrap_or(false);
        let pitch = match (cheapest, fast) {
            (true, true) => "the absolute best deal — cheapest AND fastest!".to_string(),
            (true, false) => "the cheapest offer on the market.".to_string(),
            (false, true) => "the fastest delivery available.".to_string(),
            (false, false) => "a balanced compromise of price and delivery.".to_string(),
        };
        println!("COSIMA says: '{shop} offers it for {price} — {pitch}'");
    }
    Ok(())
}
