//! Mobile / location-based search (paper §4.2).
//!
//! Run with: `cargo run --example mobile_search`
//!
//! On a WAP phone every retry costs typing and airtime; the BMO model
//! makes the *first* answer the best possible one. Combines a
//! location-based preference (nearby first) with the classic NEG example
//! and a BUT ONLY quality threshold so the tiny screen never floods.

use prefsql::PrefSqlConnection;
use prefsql_workload::hotels;

fn main() -> prefsql::Result<()> {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(hotels::table(300, 4711))
        .expect("catalog empty");

    // The user's standing profile, stored once as named preferences —
    // the Preference Definition Language at work.
    conn.execute("CREATE PREFERENCE nearby AS LOWEST(distance_km)")?;
    conn.execute("CREATE PREFERENCE quiet AS location <> 'downtown'")?;
    conn.execute("CREATE PREFERENCE affordable AS price BETWEEN 80, 140")?;

    println!("Stored profile preferences: nearby, quiet, affordable\n");

    // One keypress on the phone issues the whole search.
    let rs = conn.query(
        "SELECT name, location, price, stars, distance_km FROM hotels \
         PREFERRING (PREFERENCE nearby AND PREFERENCE affordable) CASCADE PREFERENCE quiet \
         ORDER BY distance_km",
    )?;
    println!("First (and only needed) answer — best matches for the profile:");
    println!("{rs}");

    // Screen-size quality control: accept at most 3 km of detour and 20
    // currency units beyond the budget band, else show nothing and say so.
    let rs = conn.query(
        "SELECT name, location, price, distance_km FROM hotels \
         PREFERRING PREFERENCE nearby AND PREFERENCE affordable \
         BUT ONLY DISTANCE(distance_km) <= 3 AND DISTANCE(price) <= 20 \
         ORDER BY price",
    )?;
    if rs.is_empty() {
        println!("No hotel within the quality thresholds — honest empty answer.");
    } else {
        println!("Within strict quality thresholds (fits one WAP screen):");
        println!("{rs}");
    }
    Ok(())
}
