//! The job-portal scenario of the paper's §3.3 benchmark, at demo scale.
//!
//! Run with: `cargo run --example job_search --release`
//!
//! Shows the three strategies the benchmark compares, on the synthetic
//! 74-attribute profile relation:
//!   1. hard conjunctive WHERE   — precise but often (near-)empty,
//!   2. hard disjunctive WHERE   — never empty but floods the recruiter,
//!   3. Pareto PREFERRING        — the small set of best compromises.

use prefsql::PrefSqlConnection;
use prefsql_workload::jobs;
use std::time::Instant;

fn main() -> prefsql::Result<()> {
    let rows = 20_000;
    println!("Generating {rows} synthetic skill profiles (74 attributes)...");
    let table = jobs::table(rows, 7);
    let (region, lo, hi, candidates) = jobs::preselection_for_size(&table, 600);

    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("catalog empty");
    conn.execute("CREATE INDEX idx_region ON profiles (region) USING hash")?;
    conn.execute("CREATE INDEX idx_salary ON profiles (salary)")?;

    let pre = format!("region = {region} AND salary BETWEEN {lo} AND {hi}");
    println!("Pre-selection: {pre}  (~{candidates} candidates)\n");

    let criteria = jobs::second_selection(0);
    let hard: Vec<&str> = criteria.iter().map(|(h, _)| *h).collect();
    let soft: Vec<&str> = criteria.iter().map(|(_, s)| *s).collect();

    // Strategy 1: conjunctive hard constraints.
    let conj = format!(
        "SELECT id FROM profiles WHERE {pre} AND {}",
        hard.join(" AND ")
    );
    let t0 = Instant::now();
    let rs = conn.query(&conj)?;
    println!(
        "1. conjunctive WHERE: {:>6} hits in {:>8.2?}   (the empty-result trap)",
        rs.len(),
        t0.elapsed()
    );

    // Strategy 2: disjunctive hard constraints.
    let disj = format!(
        "SELECT id FROM profiles WHERE {pre} AND ({})",
        hard.join(" OR ")
    );
    let t0 = Instant::now();
    let rs = conn.query(&disj)?;
    println!(
        "2. disjunctive WHERE: {:>6} hits in {:>8.2?}   (the flooding trap)",
        rs.len(),
        t0.elapsed()
    );

    // Strategy 3: Pareto-accumulated preferences.
    let pref = format!(
        "SELECT id FROM profiles WHERE {pre} PREFERRING {}",
        soft.join(" AND ")
    );
    let t0 = Instant::now();
    let rs = conn.query(&pref)?;
    println!(
        "3. Preference SQL:    {:>6} hits in {:>8.2?}   (best matches only)\n",
        rs.len(),
        t0.elapsed()
    );

    // Show the recruiter the winning profiles with quality annotations.
    let adorned = format!(
        "SELECT id, experience_years, skill_java, english_level, mobility_km \
         FROM profiles WHERE {pre} PREFERRING {} LIMIT 10",
        soft.join(" AND ")
    );
    println!("Top candidates:\n{}", conn.query(&adorned)?);
    Ok(())
}
